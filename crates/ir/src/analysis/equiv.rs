//! Symbolic translation validation for RMT transforms.
//!
//! The transform pipeline in `rmt-core` is trusted nowhere: every
//! original/transformed kernel pair can be re-proved equivalent after the
//! fact by the engine in this module. Both kernels are symbolically
//! executed over a shared hash-consed term domain — no external solver —
//! and two families of proof obligations are discharged:
//!
//! * **Observational equivalence** — every sphere-of-replication exit
//!   (global store/atomic, plus local stores when the LDS sits outside
//!   the sphere) in the transformed kernel writes, at the same exit
//!   index, the same kind/address/value terms under the same path
//!   condition as the original kernel.
//! * **Compare-dominance** — every detection compare inserted by the
//!   transform compares provably-equal replica values (so it can only
//!   fire on a real fault), and every covered exit is actually guarded
//!   by compares over *both* its address and its stored value, sourced
//!   cross-replica through the communication channel.
//!
//! The transformed kernel is walked with **two lock-step states** — the
//! producer (P) and consumer (C) replica — whose builtin reads are
//! related to the original's through per-flavor [`BuiltinView`]s (e.g.
//! Intra-Group RMT sees `local_id = 2·a + side` where the original sees
//! `a`). RMT machinery (role guards, channel traffic, the Inter-Group
//! ticket/full-empty protocol, detection counters) is abstracted through
//! the register sets in [`TvConfig`], normally derived from
//! `RmtKernel::provenance` by `rmt-core`.
//!
//! The term domain is deliberately small: affine polynomials over atoms
//! with wrapping `u32` coefficients, plus opaque interned operator
//! applications with a handful of sound rewrites (`(2a+1)>>1 = a`,
//! `(2a)&1 = 0`, equality via affine difference, …). Everything the
//! domain cannot prove becomes structured [`Residue`], never a panic —
//! the engine is total over validated kernels.
//!
//! What is **assumed**, not proved: the memory oracle is deterministic
//! (two loads of the same address at the same logical clock see the same
//! value — fault-free, data-race-free execution), replicated LDS halves
//! behave identically, the full/empty protocol is live, and `u32` shift
//! normalization treats values as ideal integers in `[0, 2^32)` with a
//! signed reading of affine coefficients. Timing and *fault-present*
//! behavior are out of scope — those are what the fault-injection
//! campaigns and the differential fuzz oracle measure dynamically.

use crate::analysis::uniformity::has_divergent_barrier;
use crate::inst::{
    AtomicOp, BinOp, Block, Builtin, CmpOp, Dim, Inst, MemSpace, Reg, SwizzleMode, UnOp,
};
use crate::kernel::Kernel;
use crate::types::Ty;
use std::collections::{BTreeMap, HashMap, HashSet};

// ---------------------------------------------------------------------------
// Public configuration and report types
// ---------------------------------------------------------------------------

/// How a transformed kernel's raw builtin reads relate to the original's.
///
/// The lock-step walk models the *logical* work-item: the atom for
/// `LocalId(0)` always denotes the original kernel's local id. A view says
/// what the transformed (or, for Inter-Group, the original) kernel's
/// hardware builtin evaluates to in terms of those logical atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinView {
    /// The builtin reads the logical atom unchanged.
    Identity,
    /// Doubled launch with adjacent-lane pairing: the raw value is
    /// `2·atom + side` (Intra-Group `local_id`/`global_id`).
    PairSplit,
    /// Doubled launch extent: the raw value is `2·atom` (Intra-Group
    /// `local_size`/`global_size`, Inter-Group `num_groups`).
    Doubled,
    /// Inter-Group original-side view: the logical group/global id is
    /// derived from the global work ticket `T` rather than the hardware
    /// group id (`group_id0 = T % num_groups0`, and so on).
    TicketDerived,
}

/// Register sets and walk parameters abstracting the RMT machinery.
///
/// `rmt-core` derives one of these per transformed kernel from its
/// provenance tags; [`Default`] (all sets empty, identity views) treats
/// the "transformed" kernel as plain user code, which is what
/// [`self_check`] uses.
#[derive(Debug, Clone, Default)]
pub struct TvConfig {
    /// Registers holding values received from the partner replica
    /// (channel loads, FAST swizzle results).
    pub channel_values: HashSet<Reg>,
    /// Protocol registers: the ticket-counter atomic address, broadcast
    /// ticket loads, and full/empty wait-loop condition registers.
    pub protocol: HashSet<Reg>,
    /// Destination registers of detection compares.
    pub detect_compares: HashSet<Reg>,
    /// Guard condition registers whose `if`s are transform machinery
    /// (role guards and detect-compare guards) rather than user control
    /// flow — they contribute no path-condition entries.
    pub machinery_guards: HashSet<Reg>,
    /// Address registers of communication-channel stores/loads/atomics.
    pub comm_addrs: HashSet<Reg>,
    /// Address registers of detection-counter traffic (ignored by the
    /// walk: detection bumps are not observable outputs).
    pub detect_addrs: HashSet<Reg>,
    /// Builtin views applied while walking the *original* kernel.
    pub orig_views: HashMap<Builtin, BuiltinView>,
    /// Builtin views applied while walking the *transformed* kernel.
    pub trans_views: HashMap<Builtin, BuiltinView>,
    /// Bytes subtracted from consumer-side local addresses (the
    /// duplicated-LDS offset under Intra+LDS), 0 when LDS is shared.
    pub lds_relocation: u32,
    /// Skip the first barrier of the transformed kernel when aligning
    /// memory clocks (the Inter-Group ticket-broadcast barrier has no
    /// counterpart in the original).
    pub skip_first_barrier: bool,
    /// Discharge the compare-dominance obligation (off for
    /// `RedundantNoComm`, which intentionally omits detection).
    pub check_coverage: bool,
    /// Treat local stores as sphere-of-replication exits needing compare
    /// coverage (Intra−LDS: the LDS is outside the sphere).
    pub cover_local_stores: bool,
    /// Selective hardening: exits whose enclosing block carries no
    /// detection compares at all are deliberately unprotected and exempt
    /// from the coverage obligation.
    pub selective: bool,
}

/// Classification of one unproved obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResidueKind {
    /// The two kernels record different numbers of sphere exits.
    ExitCount,
    /// Exit `index` differs in instruction kind or memory space.
    ExitKind {
        /// Index into the aligned exit sequence.
        index: usize,
    },
    /// Exit `index` writes an address not provably equal.
    ExitAddr {
        /// Index into the aligned exit sequence.
        index: usize,
    },
    /// Exit `index` writes a value (or atomic comparand) not provably
    /// equal.
    ExitValue {
        /// Index into the aligned exit sequence.
        index: usize,
    },
    /// Exit `index` executes under a different path condition.
    ExitPath {
        /// Index into the aligned exit sequence.
        index: usize,
    },
    /// Detection compare `index` compares values not provably equal in a
    /// fault-free run (it could fire spuriously — or was tampered with).
    CompareMismatch {
        /// Index into the transformed kernel's compare sequence.
        index: usize,
    },
    /// Exit `exit` lacks a channel-sourced detection compare over the
    /// given operand ("address" or "value").
    CompareUncovered {
        /// Index into the aligned exit sequence.
        exit: usize,
        /// Which operand is unguarded: `"address"` or `"value"`.
        operand: &'static str,
    },
    /// User-loop `ordinal`'s condition differs between the kernels (or
    /// between the two replicas).
    LoopCondMismatch {
        /// Zero-based ordinal of the user loop in walk order.
        ordinal: u32,
    },
    /// The kernels contain different numbers of user loops.
    LoopCount,
    /// The pair is outside the engine's supported fragment; see the
    /// residue detail for the reason.
    Unsupported,
}

/// One unproved obligation: a machine-readable kind plus a rendered
/// explanation with the symbolic terms involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Residue {
    /// What kind of obligation failed.
    pub kind: ResidueKind,
    /// Human-readable detail, including rendered terms.
    pub detail: String,
}

/// Outcome of validating one kernel pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TvReport {
    /// Sphere exits whose equivalence (and, when requested, coverage)
    /// obligations all discharged.
    pub exits_proved: usize,
    /// Detection compares proved to compare equal fault-free values.
    pub compares_proved: usize,
    /// User loops whose conditions proved equal across kernels and
    /// replicas.
    pub loops_proved: usize,
    /// Every obligation that did not discharge, in walk order.
    pub residue: Vec<Residue>,
}

impl TvReport {
    /// `true` when every obligation discharged.
    #[must_use]
    pub fn proved(&self) -> bool {
        self.residue.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Term domain
// ---------------------------------------------------------------------------

/// Interned term handle; ids are creation-ordered, so equal construction
/// sequences yield equal ids (the determinism the `--jobs` test relies on).
type TermId = u32;

/// Leaf symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Atom {
    /// A *logical* builtin of the original kernel.
    Builtin(Builtin),
    /// Kernel parameter by index (shared prefix between the kernels).
    Param(usize),
    /// The Inter-Group logical work index (ticket pair number).
    Ticket,
    /// Loop-carried value of `reg` at an arbitrary iteration of user
    /// loop `ordinal` (the induction hypothesis: both replicas and the
    /// original agree on it).
    Havoc { ordinal: u32, reg: Reg },
    /// A value the engine deliberately does not model (e.g. a missed
    /// channel lookup); distinct opaques never compare equal.
    Opaque(u32),
}

/// Operator tag of an uninterpreted (or partially interpreted) node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum OpTag {
    Bin(BinOp, Ty),
    Un(UnOp),
    Cmp(CmpOp, Ty),
    /// `Ite(cond, then, else)` from branch merges and `Select`.
    Ite,
    /// `Load(addr, clock)`: the value a deterministic memory oracle
    /// returns for `addr` at logical time `clock`.
    Load(MemSpace),
    /// `AtomicOld(addr, value, clock[, cmp])`: the old value returned by
    /// the atomic with discriminant `u8` at logical time `clock`.
    AtomicOld(MemSpace, u8),
    /// Per-lane swizzle result outside the FAST channel abstraction.
    Swizzle(SwizzleMode),
}

/// A term: an affine polynomial, a leaf, or an operator application.
///
/// Affine parts are `(coefficient, term)` pairs sorted by term id with
/// wrapping-`u32` coefficients; parts never reference other `Affine`
/// nodes (construction flattens them), so structural equality of the
/// hash-consed nodes is canonical-form equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TermKind {
    Affine { k: u32, parts: Vec<(u32, TermId)> },
    Atom(Atom),
    Op { tag: OpTag, args: Vec<TermId> },
}

/// Hash-consing arena. Interning gives O(1) congruence: two terms are
/// provably equal exactly when their ids coincide.
struct Arena {
    kinds: Vec<TermKind>,
    map: HashMap<TermKind, TermId>,
    next_opaque: u32,
}

/// Integer binary evaluation mirroring `gcn-sim`'s ALU bit-for-bit
/// (wrapping arithmetic, division by zero yields 0, shift counts masked
/// to 5 bits). Returns `None` for floats — float folding is unsound under
/// NaN payloads and needless for id-equality.
fn eval_bin_int(op: BinOp, ty: Ty, a: u32, b: u32) -> Option<u32> {
    if !ty.is_int() {
        return None;
    }
    let signed = ty == Ty::I32;
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else if signed {
                (a as i32).wrapping_div(b as i32) as u32
            } else {
                a / b
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else if signed {
                (a as i32).wrapping_rem(b as i32) as u32
            } else {
                a % b
            }
        }
        BinOp::Min => {
            if signed {
                (a as i32).min(b as i32) as u32
            } else {
                a.min(b)
            }
        }
        BinOp::Max => {
            if signed {
                (a as i32).max(b as i32) as u32
            } else {
                a.max(b)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b & 31),
        BinOp::Shr => {
            if signed {
                ((a as i32).wrapping_shr(b & 31)) as u32
            } else {
                a.wrapping_shr(b & 31)
            }
        }
    })
}

/// Integer comparison evaluation mirroring the simulator (result 0/1).
fn eval_cmp_int(op: CmpOp, ty: Ty, a: u32, b: u32) -> Option<u32> {
    if !ty.is_int() {
        return None;
    }
    let r = if ty == Ty::I32 {
        let (a, b) = (a as i32, b as i32);
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    } else {
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    };
    Some(r as u32)
}

/// `true` for commutative integer operators whose opaque applications may
/// sort their arguments (floats are excluded: NaN payload propagation
/// makes even `Add` order-sensitive in principle, and order costs
/// nothing).
fn commutative_int(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Min | BinOp::Max
    )
}

impl Arena {
    fn new() -> Self {
        Arena {
            kinds: Vec::new(),
            map: HashMap::new(),
            next_opaque: 0,
        }
    }

    fn intern(&mut self, kind: TermKind) -> TermId {
        if let Some(&id) = self.map.get(&kind) {
            return id;
        }
        let id = self.kinds.len() as TermId;
        self.kinds.push(kind.clone());
        self.map.insert(kind, id);
        id
    }

    fn cst(&mut self, k: u32) -> TermId {
        self.intern(TermKind::Affine {
            k,
            parts: Vec::new(),
        })
    }

    fn atom(&mut self, a: Atom) -> TermId {
        self.intern(TermKind::Atom(a))
    }

    fn fresh_opaque(&mut self) -> TermId {
        let n = self.next_opaque;
        self.next_opaque += 1;
        self.atom(Atom::Opaque(n))
    }

    fn as_const(&self, t: TermId) -> Option<u32> {
        match &self.kinds[t as usize] {
            TermKind::Affine { k, parts } if parts.is_empty() => Some(*k),
            _ => None,
        }
    }

    /// Views any term as an affine polynomial: `Affine` nodes decompose,
    /// everything else is `0 + 1·t`.
    fn parts_of(&self, t: TermId) -> (u32, Vec<(u32, TermId)>) {
        match &self.kinds[t as usize] {
            TermKind::Affine { k, parts } => (*k, parts.clone()),
            _ => (0, vec![(1, t)]),
        }
    }

    /// Canonicalizing affine constructor: merges duplicate parts with
    /// wrapping coefficient addition, drops zero coefficients, sorts by
    /// term id, and collapses `0 + 1·t` to `t`.
    fn mk_affine(&mut self, k: u32, raw: Vec<(u32, TermId)>) -> TermId {
        let mut merged: BTreeMap<TermId, u32> = BTreeMap::new();
        for (c, t) in raw {
            if c != 0 {
                let e = merged.entry(t).or_insert(0);
                *e = e.wrapping_add(c);
            }
        }
        let parts: Vec<(u32, TermId)> = merged
            .into_iter()
            .filter(|&(_, c)| c != 0)
            .map(|(t, c)| (c, t))
            .collect();
        if k == 0 && parts.len() == 1 && parts[0].0 == 1 {
            return parts[0].1;
        }
        self.intern(TermKind::Affine { k, parts })
    }

    fn add(&mut self, a: TermId, b: TermId) -> TermId {
        let (ka, mut pa) = self.parts_of(a);
        let (kb, pb) = self.parts_of(b);
        pa.extend(pb);
        self.mk_affine(ka.wrapping_add(kb), pa)
    }

    fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let (ka, mut pa) = self.parts_of(a);
        let (kb, pb) = self.parts_of(b);
        pa.extend(pb.into_iter().map(|(c, t)| (0u32.wrapping_sub(c), t)));
        self.mk_affine(ka.wrapping_sub(kb), pa)
    }

    fn scale(&mut self, a: TermId, c: u32) -> TermId {
        if c == 0 {
            return self.cst(0);
        }
        let (k, parts) = self.parts_of(a);
        let parts = parts
            .into_iter()
            .map(|(co, t)| (co.wrapping_mul(c), t))
            .collect();
        self.mk_affine(k.wrapping_mul(c), parts)
    }

    /// Normalizing operator constructor; every instruction result funnels
    /// through here so both walks see identical canonical forms.
    fn op(&mut self, tag: OpTag, mut args: Vec<TermId>) -> TermId {
        match &tag {
            OpTag::Bin(bop, ty) if ty.is_int() => {
                let (a, b) = (args[0], args[1]);
                if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
                    if let Some(v) = eval_bin_int(*bop, *ty, x, y) {
                        return self.cst(v);
                    }
                }
                match bop {
                    BinOp::Add => return self.add(a, b),
                    BinOp::Sub => return self.sub(a, b),
                    BinOp::Mul => {
                        if let Some(c) = self.as_const(a) {
                            return self.scale(b, c);
                        }
                        if let Some(c) = self.as_const(b) {
                            return self.scale(a, c);
                        }
                    }
                    BinOp::Shl => {
                        // Shift-left by a constant is multiplication by a
                        // power of two in wrapping arithmetic — exact for
                        // both u32 and the two's-complement i32 reading.
                        if let Some(c) = self.as_const(b) {
                            return self.scale(a, 1u32.wrapping_shl(c & 31));
                        }
                    }
                    BinOp::Shr if *ty == Ty::U32 => {
                        if let Some(c) = self.as_const(b) {
                            let c = c & 31;
                            if c == 0 {
                                return a;
                            }
                            // (Σ cᵢ·tᵢ + k) >> c folds when every
                            // coefficient is divisible by 2^c: then the
                            // low c bits come from k alone and flooring
                            // distributes. Coefficients and k are halved
                            // with an *arithmetic* shift so the wrapping
                            // encoding of negative offsets (e.g.
                            // 2a−1 = 2a + 0xFFFF_FFFF) divides correctly:
                            // (2a−1)>>1 = a−1. This is the ideal-integer
                            // reading (true value in range) the address
                            // lint already assumes.
                            let (k, parts) = self.parts_of(a);
                            let mask = (1u32 << c) - 1;
                            if !parts.is_empty() && parts.iter().all(|&(co, _)| co & mask == 0) {
                                let parts = parts
                                    .into_iter()
                                    .map(|(co, t)| (((co as i32) >> c) as u32, t))
                                    .collect();
                                return self.mk_affine(((k as i32) >> c) as u32, parts);
                            }
                        }
                    }
                    BinOp::And => {
                        if self.as_const(a) == Some(0) || self.as_const(b) == Some(0) {
                            return self.cst(0);
                        }
                        if a == b {
                            return a;
                        }
                        // Parity extraction: (Σ cᵢ·tᵢ + k) & 1 is k & 1
                        // when every coefficient is even — exact under
                        // wrapping, no range assumption needed.
                        for (x, y) in [(a, b), (b, a)] {
                            if self.as_const(y) == Some(1) {
                                let (k, parts) = self.parts_of(x);
                                if !parts.is_empty() && parts.iter().all(|&(co, _)| co & 1 == 0) {
                                    return self.cst(k & 1);
                                }
                            }
                        }
                    }
                    BinOp::Or => {
                        if self.as_const(a) == Some(0) {
                            return b;
                        }
                        if self.as_const(b) == Some(0) {
                            return a;
                        }
                        if a == b {
                            return a;
                        }
                    }
                    BinOp::Xor => {
                        if self.as_const(a) == Some(0) {
                            return b;
                        }
                        if self.as_const(b) == Some(0) {
                            return a;
                        }
                        if a == b {
                            return self.cst(0);
                        }
                    }
                    BinOp::Rem => {
                        // x % x = 0 for any x, including 0 (0 % 0 = 0 by
                        // the division-by-zero convention).
                        if a == b {
                            return self.cst(0);
                        }
                    }
                    BinOp::Min | BinOp::Max => {
                        if a == b {
                            return a;
                        }
                    }
                    BinOp::Div | BinOp::Shr => {}
                }
                if commutative_int(*bop) && args[0] > args[1] {
                    args.swap(0, 1);
                }
            }
            OpTag::Cmp(cop, ty) if ty.is_int() => match cop {
                CmpOp::Eq | CmpOp::Ne => {
                    // Equality through the affine difference: exact under
                    // wrapping, and it decides far more than literal
                    // const-const pairs (e.g. (2a+1) vs (2a) ⇒ Ne).
                    let d = self.sub(args[0], args[1]);
                    if let Some(v) = self.as_const(d) {
                        let eq = (v == 0) as u32;
                        return self.cst(if *cop == CmpOp::Eq { eq } else { 1 - eq });
                    }
                    if args[0] > args[1] {
                        args.swap(0, 1);
                    }
                }
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                    if let (Some(x), Some(y)) = (self.as_const(args[0]), self.as_const(args[1])) {
                        if let Some(v) = eval_cmp_int(*cop, *ty, x, y) {
                            return self.cst(v);
                        }
                    }
                    if args[0] == args[1] {
                        return self.cst(matches!(cop, CmpOp::Le | CmpOp::Ge) as u32);
                    }
                }
            },
            OpTag::Ite => {
                if let Some(v) = self.as_const(args[0]) {
                    return if v != 0 { args[1] } else { args[2] };
                }
                if args[1] == args[2] {
                    return args[1];
                }
            }
            OpTag::Un(UnOp::Not) => {
                // Bitwise complement on the raw pattern (the simulator's
                // `Not` is type-agnostic).
                if let Some(v) = self.as_const(args[0]) {
                    return self.cst(!v);
                }
            }
            _ => {}
        }
        self.intern(TermKind::Op { tag, args })
    }

    /// Renders a term for residue details; depth-capped so shared deep
    /// structure cannot explode the message.
    fn render(&self, t: TermId) -> String {
        self.render_depth(t, 6)
    }

    fn render_depth(&self, t: TermId, depth: u32) -> String {
        if depth == 0 {
            return format!("#{t}");
        }
        match &self.kinds[t as usize] {
            TermKind::Affine { k, parts } => {
                if parts.is_empty() {
                    return render_coeff(*k);
                }
                let mut s = String::new();
                for (i, (c, p)) in parts.iter().enumerate() {
                    if i > 0 {
                        s.push_str(" + ");
                    }
                    let r = self.render_depth(*p, depth - 1);
                    if *c == 1 {
                        s.push_str(&r);
                    } else {
                        s.push_str(&format!("{}*{r}", render_coeff(*c)));
                    }
                }
                if *k != 0 {
                    s.push_str(&format!(" + {}", render_coeff(*k)));
                }
                s
            }
            TermKind::Atom(a) => match a {
                Atom::Builtin(b) => format!("{b:?}"),
                Atom::Param(i) => format!("param{i}"),
                Atom::Ticket => "T".into(),
                Atom::Havoc { ordinal, reg } => format!("havoc{ordinal}({reg})"),
                Atom::Opaque(n) => format!("opaque{n}"),
            },
            TermKind::Op { tag, args } => {
                let inner: Vec<String> = args
                    .iter()
                    .map(|&a| self.render_depth(a, depth - 1))
                    .collect();
                format!("{tag:?}({})", inner.join(", "))
            }
        }
    }
}

/// Renders a wrapping-u32 coefficient with a signed reading for "large"
/// values, so `2a − 1` shows as `-1`, not `4294967295`.
fn render_coeff(c: u32) -> String {
    let s = c as i32;
    if s < 0 {
        format!("{s}")
    } else {
        format!("{c}")
    }
}

// ---------------------------------------------------------------------------
// Lock-step walker
// ---------------------------------------------------------------------------

/// One element of the dynamic path condition.
#[derive(Debug, Clone)]
enum PathElem {
    /// A user `if` guard with a symbolic condition on some replica:
    /// per-side condition terms plus which branch is being walked.
    Guard { terms: [TermId; 2], taken: bool },
    /// Inside user loop `ordinal` (its condition is compared separately
    /// through the loop obligations).
    Loop(u32),
}

/// Per-side projection of the path condition, recorded with each event.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ProjElem {
    Guard(TermId, bool),
    Loop(u32),
}

/// Kind of a recorded memory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    Store(MemSpace),
    /// Atomic with its operation discriminant.
    Atomic(MemSpace, u8),
}

impl EvKind {
    fn label(self) -> String {
        match self {
            EvKind::Store(sp) => format!("store.{sp:?}"),
            EvKind::Atomic(sp, d) => format!("atomic{d}.{sp:?}"),
        }
    }
}

/// Terms one replica recorded for an event.
#[derive(Debug, Clone)]
struct SideTerms {
    addr: TermId,
    value: TermId,
    /// CmpXchg comparand, when present.
    cmp: Option<TermId>,
    path: Vec<ProjElem>,
}

/// One memory event (store or atomic) that escapes the sphere-of-
/// replication machinery filter, with per-replica terms.
#[derive(Debug, Clone)]
struct Event {
    kind: EvKind,
    /// Per-side terms; index 1 is `None` on the original's walk and on
    /// branches where that replica is inactive.
    sides: [Option<SideTerms>; 2],
    /// Instance id of the innermost enclosing block (scopes the
    /// compare-dominance search).
    block: u32,
    /// Number of compares recorded before this event (dominance: only
    /// earlier compares can guard it).
    watermark: usize,
}

/// One detection compare, recorded from the replica that executed it.
#[derive(Debug, Clone)]
struct CompareRec {
    a: TermId,
    b: TermId,
    block: u32,
    /// Whether an operand register carries a channel-received value —
    /// the compare actually crosses the replica boundary.
    channel_sourced: bool,
}

/// One user-loop condition record.
#[derive(Debug, Clone)]
struct LoopRec {
    ordinal: u32,
    terms: [TermId; 2],
    act: [bool; 2],
}

/// Everything one walk produces.
#[derive(Debug, Default)]
struct WalkOut {
    events: Vec<Event>,
    compares: Vec<CompareRec>,
    loops: Vec<LoopRec>,
}

/// Parameters selecting which kernel, views and machinery a walk uses.
struct WalkParams<'a> {
    kernel: &'a Kernel,
    views: &'a HashMap<Builtin, BuiltinView>,
    /// `Some(cfg)` only on the transformed walk: enables the machinery
    /// abstraction (channel, protocol, detection filtering).
    mach: Option<&'a TvConfig>,
    /// 1 for the original, 2 (producer + consumer) for the transformed.
    sides: usize,
    reloc: u32,
    skip_first_barrier: bool,
}

struct Walker<'a> {
    arena: &'a mut Arena,
    views: &'a HashMap<Builtin, BuiltinView>,
    mach: Option<&'a TvConfig>,
    sides: usize,
    reloc: u32,
    skip_first_barrier: bool,
    seen_barrier: bool,
    /// Logical memory clock: bumps on user stores/atomics and barriers,
    /// in walk order, so matching loads on both walks read matching
    /// `(addr, clock)` oracle queries.
    clock: u32,
    loop_ordinal: u32,
    block_counter: u32,
    env: [HashMap<Reg, TermId>; 2],
    /// Per-publishing-side channel contents: raw address term → value.
    channel: [HashMap<TermId, TermId>; 2],
    path: Vec<PathElem>,
    out: WalkOut,
}

fn run_walk(arena: &mut Arena, p: WalkParams<'_>) -> WalkOut {
    let mut w = Walker {
        arena,
        views: p.views,
        mach: p.mach,
        sides: p.sides,
        reloc: p.reloc,
        skip_first_barrier: p.skip_first_barrier,
        seen_barrier: false,
        clock: 0,
        loop_ordinal: 0,
        block_counter: 0,
        env: [HashMap::new(), HashMap::new()],
        channel: [HashMap::new(), HashMap::new()],
        path: Vec::new(),
        out: WalkOut::default(),
    };
    let act = [true, p.sides == 2];
    w.walk_block(&p.kernel.body.0, act);
    w.out
}

/// Ordered-dedup destination registers of a block, descending into
/// nested control flow (the merge and havoc sets).
fn block_defs(insts: &[Inst], out: &mut Vec<Reg>, seen: &mut HashSet<Reg>) {
    for inst in insts {
        if let Some(d) = inst.dst() {
            if seen.insert(d) {
                out.push(d);
            }
        }
        match inst {
            Inst::If {
                then_blk, else_blk, ..
            } => {
                block_defs(&then_blk.0, out, seen);
                block_defs(&else_blk.0, out, seen);
            }
            Inst::While { cond, body, .. } => {
                block_defs(&cond.0, out, seen);
                block_defs(&body.0, out, seen);
            }
            _ => {}
        }
    }
}

fn atomic_disc(op: &AtomicOp) -> u8 {
    match op {
        AtomicOp::Add => 0,
        AtomicOp::Exchange => 1,
        AtomicOp::CmpXchg { .. } => 2,
        AtomicOp::Max => 3,
        AtomicOp::Min => 4,
    }
}

impl Walker<'_> {
    /// Reads `r` on side `s`; an unset register is the zero-initialized
    /// register file (matching the simulator's semantics exactly).
    fn read(&mut self, s: usize, r: Reg) -> TermId {
        match self.env[s].get(&r) {
            Some(&t) => t,
            None => self.arena.cst(0),
        }
    }

    fn write(&mut self, s: usize, act: [bool; 2], r: Reg, t: TermId) {
        if act[s] {
            self.env[s].insert(r, t);
        }
    }

    /// Recording side for single-record artifacts (detection compares):
    /// the consumer replica when it is active, else the producer.
    fn rec_side(&self, act: [bool; 2]) -> usize {
        if self.sides == 2 && act[1] {
            1
        } else {
            0
        }
    }

    /// Per-side projection of the current path condition.
    fn project(&self, s: usize) -> Vec<ProjElem> {
        self.path
            .iter()
            .map(|e| match e {
                PathElem::Guard { terms, taken } => ProjElem::Guard(terms[s], *taken),
                PathElem::Loop(n) => ProjElem::Loop(*n),
            })
            .collect()
    }

    /// The term a raw builtin read evaluates to on side `s`, through the
    /// walk's views.
    fn builtin_term(&mut self, s: usize, b: Builtin) -> TermId {
        match self.views.get(&b).copied().unwrap_or(BuiltinView::Identity) {
            BuiltinView::Identity => self.arena.atom(Atom::Builtin(b)),
            BuiltinView::PairSplit => {
                let a = self.arena.atom(Atom::Builtin(b));
                self.arena.mk_affine(s as u32, vec![(2, a)])
            }
            BuiltinView::Doubled => {
                let a = self.arena.atom(Atom::Builtin(b));
                self.arena.mk_affine(0, vec![(2, a)])
            }
            BuiltinView::TicketDerived => self.ticket_derived(b),
        }
    }

    /// Inter-Group original-side derivations: the logical 3-D group id
    /// decomposed from the linear work ticket `T`, and the global id
    /// rebuilt as `group·local_size + local_id`. Constructed with the
    /// same normalizing [`Arena::op`] calls the transformed prologue's
    /// instructions produce, so matching derivations share term ids.
    fn ticket_derived(&mut self, b: Builtin) -> TermId {
        let t = self.arena.atom(Atom::Ticket);
        let ng0 = self.arena.atom(Atom::Builtin(Builtin::NumGroups(Dim(0))));
        let ng1 = self.arena.atom(Atom::Builtin(Builtin::NumGroups(Dim(1))));
        let group = |w: &mut Self, d: u8| -> TermId {
            match d {
                0 => w.arena.op(OpTag::Bin(BinOp::Rem, Ty::U32), vec![t, ng0]),
                1 => {
                    let q = w.arena.op(OpTag::Bin(BinOp::Div, Ty::U32), vec![t, ng0]);
                    w.arena.op(OpTag::Bin(BinOp::Rem, Ty::U32), vec![q, ng1])
                }
                _ => {
                    let q = w.arena.op(OpTag::Bin(BinOp::Div, Ty::U32), vec![t, ng0]);
                    w.arena.op(OpTag::Bin(BinOp::Div, Ty::U32), vec![q, ng1])
                }
            }
        };
        match b {
            Builtin::GroupId(Dim(d)) => group(self, d),
            Builtin::GlobalId(Dim(d)) => {
                let g = group(self, d);
                let ls = self.arena.atom(Atom::Builtin(Builtin::LocalSize(Dim(d))));
                let lid = self.arena.atom(Atom::Builtin(Builtin::LocalId(Dim(d))));
                let scaled = self.arena.op(OpTag::Bin(BinOp::Mul, Ty::U32), vec![g, ls]);
                self.arena.add(scaled, lid)
            }
            _ => self.arena.atom(Atom::Builtin(b)),
        }
    }

    /// Consumer-side local addresses are relocated back into the
    /// original LDS window when the transform duplicated it.
    fn local_addr(&mut self, s: usize, space: MemSpace, t: TermId) -> TermId {
        if space == MemSpace::Local && s == 1 && self.reloc != 0 {
            let r = self.arena.cst(self.reloc);
            self.arena.sub(t, r)
        } else {
            t
        }
    }

    fn bump_barrier(&mut self) {
        if !self.seen_barrier {
            self.seen_barrier = true;
            if !self.skip_first_barrier {
                self.clock += 1;
            }
        } else {
            self.clock += 1;
        }
    }

    fn walk_block(&mut self, insts: &[Inst], act: [bool; 2]) {
        let block_id = self.block_counter;
        self.block_counter += 1;
        for inst in insts {
            self.exec(inst, act, block_id);
        }
    }

    fn exec(&mut self, inst: &Inst, act: [bool; 2], block_id: u32) {
        match inst {
            Inst::Const { dst, bits, .. } => {
                let t = self.arena.cst(*bits);
                for s in 0..self.sides {
                    self.write(s, act, *dst, t);
                }
            }
            Inst::ReadParam { dst, index } => {
                let t = self.arena.atom(Atom::Param(*index));
                for s in 0..self.sides {
                    self.write(s, act, *dst, t);
                }
            }
            Inst::ReadBuiltin { dst, builtin } => {
                for s in 0..self.sides {
                    let t = self.builtin_term(s, *builtin);
                    self.write(s, act, *dst, t);
                }
            }
            Inst::Mov { dst, src } => {
                for s in 0..self.sides {
                    let t = self.read(s, *src);
                    self.write(s, act, *dst, t);
                }
            }
            Inst::Unary { dst, op, a } => {
                for s in 0..self.sides {
                    let ta = self.read(s, *a);
                    let t = self.arena.op(OpTag::Un(*op), vec![ta]);
                    self.write(s, act, *dst, t);
                }
            }
            Inst::Binary { dst, op, ty, a, b } => {
                for s in 0..self.sides {
                    let ta = self.read(s, *a);
                    let tb = self.read(s, *b);
                    let t = self.arena.op(OpTag::Bin(*op, *ty), vec![ta, tb]);
                    self.write(s, act, *dst, t);
                }
            }
            Inst::Cmp { dst, op, ty, a, b } => {
                for s in 0..self.sides {
                    let ta = self.read(s, *a);
                    let tb = self.read(s, *b);
                    let t = self.arena.op(OpTag::Cmp(*op, *ty), vec![ta, tb]);
                    self.write(s, act, *dst, t);
                }
                if let Some(cfg) = self.mach {
                    if cfg.detect_compares.contains(dst) {
                        let s = self.rec_side(act);
                        let ta = self.read(s, *a);
                        let tb = self.read(s, *b);
                        let channel_sourced =
                            cfg.channel_values.contains(a) || cfg.channel_values.contains(b);
                        self.out.compares.push(CompareRec {
                            a: ta,
                            b: tb,
                            block: block_id,
                            channel_sourced,
                        });
                    }
                }
            }
            Inst::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                for s in 0..self.sides {
                    let c = self.read(s, *cond);
                    let t = self.read(s, *if_true);
                    let f = self.read(s, *if_false);
                    let r = self.arena.op(OpTag::Ite, vec![c, t, f]);
                    self.write(s, act, *dst, r);
                }
            }
            Inst::Swizzle { dst, src, mode } => self.exec_swizzle(*dst, *src, *mode, act),
            Inst::Load { dst, space, addr } => self.exec_load(*dst, *space, *addr, act),
            Inst::Store { space, addr, value } => {
                self.exec_store(*space, *addr, *value, act, block_id)
            }
            Inst::Atomic {
                dst,
                space,
                op,
                addr,
                value,
            } => self.exec_atomic(*dst, *space, op, *addr, *value, act, block_id),
            Inst::Barrier => self.bump_barrier(),
            Inst::If {
                cond,
                then_blk,
                else_blk,
            } => self.exec_if(*cond, then_blk, else_blk, act),
            Inst::While {
                cond,
                cond_reg,
                body,
            } => self.exec_while(cond, *cond_reg, body, act),
        }
    }

    fn exec_swizzle(&mut self, dst: Reg, src: Reg, mode: SwizzleMode, act: [bool; 2]) {
        if let Some(cfg) = self.mach {
            if cfg.channel_values.contains(&dst) {
                // FAST exchange: the swizzle reads the partner lane's
                // VGPR regardless of EXEC, so source terms are read
                // unconditionally and only the write is activity-gated.
                let s0 = self.read(0, src);
                let s1 = self.read(1, src);
                let (v0, v1) = match mode {
                    SwizzleMode::DupEven => (s0, s0),
                    SwizzleMode::DupOdd => (s1, s1),
                    SwizzleMode::SwapPairs => (s1, s0),
                };
                self.write(0, act, dst, v0);
                if self.sides == 2 {
                    self.write(1, act, dst, v1);
                }
                return;
            }
        }
        for s in 0..self.sides {
            let t = self.read(s, src);
            let r = self.arena.op(OpTag::Swizzle(mode), vec![t]);
            self.write(s, act, dst, r);
        }
    }

    fn exec_load(&mut self, dst: Reg, space: MemSpace, addr: Reg, act: [bool; 2]) {
        if let Some(cfg) = self.mach {
            if cfg.channel_values.contains(&dst) {
                // Cross-replica channel read: the value the *partner*
                // published at this raw slot address. A missed lookup
                // yields a fresh opaque — honest residue downstream, not
                // a spurious proof.
                for (s, &on) in act.iter().enumerate().take(self.sides) {
                    if on {
                        let a = self.read(s, addr);
                        let v = match self.channel[1 - s].get(&a) {
                            Some(&v) => v,
                            None => self.arena.fresh_opaque(),
                        };
                        self.env[s].insert(dst, v);
                    }
                }
                return;
            }
            if cfg.protocol.contains(&dst) {
                // Same-side protocol read (ticket broadcast through LDS:
                // each replica reads back the ticket its own group
                // published).
                for (s, &on) in act.iter().enumerate().take(self.sides) {
                    if on {
                        let a = self.read(s, addr);
                        let v = match self.channel[s].get(&a) {
                            Some(&v) => v,
                            None => self.arena.fresh_opaque(),
                        };
                        self.env[s].insert(dst, v);
                    }
                }
                return;
            }
        }
        let clock_t = self.arena.cst(self.clock);
        for (s, &on) in act.iter().enumerate().take(self.sides) {
            if on {
                let raw = self.read(s, addr);
                let a = self.local_addr(s, space, raw);
                let t = self.arena.op(OpTag::Load(space), vec![a, clock_t]);
                self.env[s].insert(dst, t);
            }
        }
    }

    fn exec_store(&mut self, space: MemSpace, addr: Reg, value: Reg, act: [bool; 2], block: u32) {
        if let Some(cfg) = self.mach {
            if cfg.comm_addrs.contains(&addr) {
                // Channel publish, keyed by the raw (unrelocated) address
                // term so the partner's identical slot formula hits.
                for (s, &on) in act.iter().enumerate().take(self.sides) {
                    if on {
                        let a = self.read(s, addr);
                        let v = self.read(s, value);
                        self.channel[s].insert(a, v);
                    }
                }
                return;
            }
            if cfg.detect_addrs.contains(&addr) {
                return;
            }
        }
        let mut sides: [Option<SideTerms>; 2] = [None, None];
        for s in 0..self.sides {
            if act[s] {
                let raw = self.read(s, addr);
                let a = self.local_addr(s, space, raw);
                let v = self.read(s, value);
                sides[s] = Some(SideTerms {
                    addr: a,
                    value: v,
                    cmp: None,
                    path: self.project(s),
                });
            }
        }
        self.out.events.push(Event {
            kind: EvKind::Store(space),
            sides,
            block,
            watermark: self.out.compares.len(),
        });
        self.clock += 1;
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_atomic(
        &mut self,
        dst: Option<Reg>,
        space: MemSpace,
        op: &AtomicOp,
        addr: Reg,
        value: Reg,
        act: [bool; 2],
        block: u32,
    ) {
        if let Some(cfg) = self.mach {
            if cfg.protocol.contains(&addr) {
                // Ticket grab: logically the work index T, with the raw
                // counter handing 2T to the producer and 2T+1 to the
                // consumer group.
                for (s, &on) in act.iter().enumerate().take(self.sides) {
                    if on {
                        if let Some(d) = dst {
                            let t = self.arena.atom(Atom::Ticket);
                            let v = self.arena.mk_affine(s as u32, vec![(2, t)]);
                            self.env[s].insert(d, v);
                        }
                    }
                }
                return;
            }
            if cfg.comm_addrs.contains(&addr) {
                // Full/empty state traffic: polls return unmodeled
                // values (protocol liveness is assumed, not proved).
                for (s, &on) in act.iter().enumerate().take(self.sides) {
                    if on {
                        if let Some(d) = dst {
                            let v = self.arena.fresh_opaque();
                            self.env[s].insert(d, v);
                        }
                    }
                }
                return;
            }
            if cfg.detect_addrs.contains(&addr) {
                return;
            }
        }
        let disc = atomic_disc(op);
        let cmp_reg = match op {
            AtomicOp::CmpXchg { cmp } => Some(*cmp),
            _ => None,
        };
        let clock_t = self.arena.cst(self.clock);
        let mut sides: [Option<SideTerms>; 2] = [None, None];
        for s in 0..self.sides {
            if act[s] {
                let raw = self.read(s, addr);
                let a = self.local_addr(s, space, raw);
                let v = self.read(s, value);
                let c = cmp_reg.map(|r| self.read(s, r));
                let mut args = vec![a, v, clock_t];
                if let Some(ct) = c {
                    args.push(ct);
                }
                let old = self.arena.op(OpTag::AtomicOld(space, disc), args);
                if let Some(d) = dst {
                    self.env[s].insert(d, old);
                }
                sides[s] = Some(SideTerms {
                    addr: a,
                    value: v,
                    cmp: c,
                    path: self.project(s),
                });
            }
        }
        self.out.events.push(Event {
            kind: EvKind::Atomic(space, disc),
            sides,
            block,
            watermark: self.out.compares.len(),
        });
        self.clock += 1;
    }

    fn exec_if(&mut self, cond: Reg, then_blk: &Block, else_blk: &Block, act: [bool; 2]) {
        let g = [self.read(0, cond), self.read(1, cond)];
        let machinery = self
            .mach
            .is_some_and(|m| m.machinery_guards.contains(&cond));
        let mut t_act = [false, false];
        let mut e_act = [false, false];
        let mut symbolic = [false, false];
        for s in 0..self.sides {
            if !act[s] {
                continue;
            }
            match self.arena.as_const(g[s]) {
                Some(0) => e_act[s] = true,
                Some(_) => t_act[s] = true,
                None => {
                    t_act[s] = true;
                    e_act[s] = true;
                    symbolic[s] = true;
                }
            }
        }
        let any_symbolic = symbolic[0] || symbolic[1];
        let push_path = any_symbolic && !machinery;
        let pre = self.env.clone();
        if t_act[0] || t_act[1] {
            if push_path {
                self.path.push(PathElem::Guard {
                    terms: g,
                    taken: true,
                });
            }
            self.walk_block(&then_blk.0, t_act);
            if push_path {
                self.path.pop();
            }
        }
        let post_then = self.env.clone();
        // Replicas with a symbolic guard walk both branches from the
        // same pre-state; constant-guard replicas keep whatever the one
        // branch they take produced.
        for s in 0..self.sides {
            if symbolic[s] {
                self.env[s] = pre[s].clone();
            }
        }
        if e_act[0] || e_act[1] {
            if push_path {
                self.path.push(PathElem::Guard {
                    terms: g,
                    taken: false,
                });
            }
            self.walk_block(&else_blk.0, e_act);
            if push_path {
                self.path.pop();
            }
        }
        if any_symbolic {
            let mut defs = Vec::new();
            let mut seen = HashSet::new();
            block_defs(&then_blk.0, &mut defs, &mut seen);
            block_defs(&else_blk.0, &mut defs, &mut seen);
            for s in 0..self.sides {
                if !symbolic[s] {
                    continue;
                }
                for &r in &defs {
                    let tv = match post_then[s].get(&r) {
                        Some(&t) => t,
                        None => self.arena.cst(0),
                    };
                    let ev = match self.env[s].get(&r) {
                        Some(&t) => t,
                        None => self.arena.cst(0),
                    };
                    let m = if tv == ev {
                        tv
                    } else {
                        self.arena.op(OpTag::Ite, vec![g[s], tv, ev])
                    };
                    self.env[s].insert(r, m);
                }
            }
        }
    }

    fn exec_while(&mut self, cond: &Block, cond_reg: Reg, body: &Block, act: [bool; 2]) {
        let machinery = self.mach.is_some_and(|m| m.protocol.contains(&cond_reg));
        if machinery {
            // Full/empty wait loop: walked once, no induction — the
            // protocol's poll results are opaque and its liveness is an
            // assumption of the model.
            self.walk_block(&cond.0, act);
            self.walk_block(&body.0, act);
            return;
        }
        let n = self.loop_ordinal;
        self.loop_ordinal += 1;
        // Inductive per-iteration argument: havoc every register the
        // loop writes (the same atom on every side — the induction
        // hypothesis that replicas agree at iteration entry), then walk
        // the condition and body once.
        let mut defs = Vec::new();
        let mut seen = HashSet::new();
        block_defs(&cond.0, &mut defs, &mut seen);
        block_defs(&body.0, &mut defs, &mut seen);
        for &r in &defs {
            let h = self.arena.atom(Atom::Havoc { ordinal: n, reg: r });
            for (s, &on) in act.iter().enumerate().take(self.sides) {
                if on {
                    self.env[s].insert(r, h);
                }
            }
        }
        self.path.push(PathElem::Loop(n));
        self.walk_block(&cond.0, act);
        let terms = [self.read(0, cond_reg), self.read(1, cond_reg)];
        self.out.loops.push(LoopRec {
            ordinal: n,
            terms,
            act,
        });
        self.walk_block(&body.0, act);
        self.path.pop();
    }
}

// ---------------------------------------------------------------------------
// Obligation assembly
// ---------------------------------------------------------------------------

/// `true` when an event is a sphere-of-replication exit that the
/// compare-dominance obligation must cover.
fn needs_coverage(kind: EvKind, cfg: &TvConfig) -> bool {
    match kind {
        EvKind::Store(MemSpace::Global) | EvKind::Atomic(MemSpace::Global, _) => true,
        EvKind::Store(MemSpace::Local) | EvKind::Atomic(MemSpace::Local, _) => {
            cfg.cover_local_stores
        }
    }
}

/// Proves a transformed kernel fault-free-equivalent to its original.
///
/// Walks both kernels over one shared term arena — the original with one
/// replica state and `cfg.orig_views`, the transformed with lock-step
/// producer/consumer states, `cfg.trans_views`, and the machinery
/// abstraction — then discharges, in deterministic walk order:
///
/// 1. exit-sequence equivalence (count, kind, address, value, path);
/// 2. detection-compare validity (`a ≡ b` fault-free);
/// 3. compare-dominance coverage of each exit (when
///    `cfg.check_coverage`);
/// 4. user-loop condition equivalence.
///
/// Anything unprovable lands in [`TvReport::residue`]; the engine never
/// panics on [`crate::validate`]-clean kernels. Kernels with barriers
/// under divergent control are rejected up front as
/// [`ResidueKind::Unsupported`] — the lock-step memory clock assumes
/// group-uniform barrier reachability.
#[must_use]
pub fn validate_pair(original: &Kernel, transformed: &Kernel, cfg: &TvConfig) -> TvReport {
    for (k, which) in [(original, "original"), (transformed, "transformed")] {
        if has_divergent_barrier(k) {
            return TvReport {
                exits_proved: 0,
                compares_proved: 0,
                loops_proved: 0,
                residue: vec![Residue {
                    kind: ResidueKind::Unsupported,
                    detail: format!(
                        "{which} kernel `{}` has a barrier under divergent control; \
                         the lock-step memory clock requires group-uniform barriers",
                        k.name
                    ),
                }],
            };
        }
    }
    let mut arena = Arena::new();
    let orig = run_walk(
        &mut arena,
        WalkParams {
            kernel: original,
            views: &cfg.orig_views,
            mach: None,
            sides: 1,
            reloc: 0,
            skip_first_barrier: false,
        },
    );
    let trans = run_walk(
        &mut arena,
        WalkParams {
            kernel: transformed,
            views: &cfg.trans_views,
            mach: Some(cfg),
            sides: 2,
            reloc: cfg.lds_relocation,
            skip_first_barrier: cfg.skip_first_barrier,
        },
    );

    let mut residue = Vec::new();
    let mut exits_proved = 0;
    let mut compares_proved = 0;
    let mut loops_proved = 0;

    if orig.events.len() != trans.events.len() {
        residue.push(Residue {
            kind: ResidueKind::ExitCount,
            detail: format!(
                "original records {} sphere exits, transformed records {}",
                orig.events.len(),
                trans.events.len()
            ),
        });
    }
    for (i, (oe, te)) in orig.events.iter().zip(trans.events.iter()).enumerate() {
        let Some(ot) = &oe.sides[0] else { continue };
        let mut ok = true;
        if oe.kind != te.kind {
            residue.push(Residue {
                kind: ResidueKind::ExitKind { index: i },
                detail: format!(
                    "exit {i}: original is {}, transformed is {}",
                    oe.kind.label(),
                    te.kind.label()
                ),
            });
            continue;
        }
        for (s, st) in te.sides.iter().enumerate() {
            let Some(tt) = st else { continue };
            let side = ["producer", "consumer"][s];
            if tt.addr != ot.addr {
                ok = false;
                residue.push(Residue {
                    kind: ResidueKind::ExitAddr { index: i },
                    detail: format!(
                        "exit {i} ({side}): address `{}` vs original `{}`",
                        arena.render(tt.addr),
                        arena.render(ot.addr)
                    ),
                });
            } else if tt.value != ot.value || tt.cmp != ot.cmp {
                ok = false;
                residue.push(Residue {
                    kind: ResidueKind::ExitValue { index: i },
                    detail: format!(
                        "exit {i} ({side}): value `{}` vs original `{}`",
                        arena.render(tt.value),
                        arena.render(ot.value)
                    ),
                });
            } else if tt.path != ot.path {
                ok = false;
                residue.push(Residue {
                    kind: ResidueKind::ExitPath { index: i },
                    detail: format!("exit {i} ({side}): path condition differs from original"),
                });
            }
        }
        if cfg.check_coverage && needs_coverage(te.kind, cfg) {
            let in_scope: Vec<&CompareRec> = trans.compares[..te.watermark]
                .iter()
                .filter(|c| c.block == te.block)
                .collect();
            if !(cfg.selective && in_scope.is_empty()) {
                for st in te.sides.iter().flatten() {
                    for (operand, term) in [("address", st.addr), ("value", st.value)] {
                        let covered = in_scope
                            .iter()
                            .any(|c| c.channel_sourced && (c.a == term || c.b == term));
                        if !covered {
                            ok = false;
                            residue.push(Residue {
                                kind: ResidueKind::CompareUncovered { exit: i, operand },
                                detail: format!(
                                    "exit {i}: no channel-sourced compare guards its {operand} \
                                     `{}`",
                                    arena.render(term)
                                ),
                            });
                        }
                    }
                }
            }
        }
        if ok {
            exits_proved += 1;
        }
    }

    for (i, c) in trans.compares.iter().enumerate() {
        if c.a == c.b {
            compares_proved += 1;
        } else {
            residue.push(Residue {
                kind: ResidueKind::CompareMismatch { index: i },
                detail: format!(
                    "detect compare {i}: `{}` vs `{}` not provably equal fault-free",
                    arena.render(c.a),
                    arena.render(c.b)
                ),
            });
        }
    }

    if orig.loops.len() != trans.loops.len() {
        residue.push(Residue {
            kind: ResidueKind::LoopCount,
            detail: format!(
                "original has {} user loops, transformed has {}",
                orig.loops.len(),
                trans.loops.len()
            ),
        });
    }
    for (ol, tl) in orig.loops.iter().zip(trans.loops.iter()) {
        let mut ok = ol.ordinal == tl.ordinal;
        if ok {
            for s in 0..2 {
                if tl.act[s] && tl.terms[s] != ol.terms[0] {
                    ok = false;
                    residue.push(Residue {
                        kind: ResidueKind::LoopCondMismatch {
                            ordinal: tl.ordinal,
                        },
                        detail: format!(
                            "loop {} ({}): condition `{}` vs original `{}`",
                            tl.ordinal,
                            ["producer", "consumer"][s],
                            arena.render(tl.terms[s]),
                            arena.render(ol.terms[0])
                        ),
                    });
                }
            }
        } else {
            residue.push(Residue {
                kind: ResidueKind::LoopCondMismatch {
                    ordinal: tl.ordinal,
                },
                detail: format!(
                    "loop ordinals diverge: original {} vs transformed {}",
                    ol.ordinal, tl.ordinal
                ),
            });
        }
        if ok {
            loops_proved += 1;
        }
    }

    TvReport {
        exits_proved,
        compares_proved,
        loops_proved,
        residue,
    }
}

/// Validates a kernel against itself under the identity configuration.
///
/// A sanity harness for the engine: any kernel the IR validator accepts
/// must prove equal to itself with empty residue (exercised by the
/// property tests over the fuzz corpus).
#[must_use]
pub fn self_check(kernel: &Kernel) -> TvReport {
    validate_pair(kernel, kernel, &TvConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelBuilder;

    fn lid_atom(ar: &mut Arena) -> TermId {
        ar.atom(Atom::Builtin(Builtin::LocalId(Dim(0))))
    }

    #[test]
    fn affine_parity_and_shift_folds() {
        let mut ar = Arena::new();
        let a = lid_atom(&mut ar);
        let one = ar.cst(1);
        let two = ar.cst(2);
        let doubled = ar.op(OpTag::Bin(BinOp::Mul, Ty::U32), vec![a, two]);
        let odd = ar.op(OpTag::Bin(BinOp::Add, Ty::U32), vec![doubled, one]);
        // (2a+1) >> 1 = a and (2a) >> 1 = a: the pair-split recovery.
        let h1 = ar.op(OpTag::Bin(BinOp::Shr, Ty::U32), vec![odd, one]);
        let h0 = ar.op(OpTag::Bin(BinOp::Shr, Ty::U32), vec![doubled, one]);
        assert_eq!(h1, a);
        assert_eq!(h0, a);
        // (2a+1) & 1 = 1 and (2a) & 1 = 0: the role-flag split.
        let p1 = ar.op(OpTag::Bin(BinOp::And, Ty::U32), vec![odd, one]);
        let p0 = ar.op(OpTag::Bin(BinOp::And, Ty::U32), vec![doubled, one]);
        assert_eq!(ar.as_const(p1), Some(1));
        assert_eq!(ar.as_const(p0), Some(0));
        // Shl by a constant scales.
        let shl = ar.op(OpTag::Bin(BinOp::Shl, Ty::U32), vec![a, one]);
        assert_eq!(shl, doubled);
    }

    #[test]
    fn equality_via_affine_difference() {
        let mut ar = Arena::new();
        let a = lid_atom(&mut ar);
        let one = ar.cst(1);
        let odd = ar.mk_affine(1, vec![(2, a)]);
        let even = ar.mk_affine(0, vec![(2, a)]);
        let eq = ar.op(OpTag::Cmp(CmpOp::Eq, Ty::U32), vec![odd, even]);
        assert_eq!(ar.as_const(eq), Some(0));
        let ne = ar.op(OpTag::Cmp(CmpOp::Ne, Ty::U32), vec![odd, even]);
        assert_eq!(ar.as_const(ne), Some(1));
        let refl = ar.op(OpTag::Cmp(CmpOp::Eq, Ty::U32), vec![odd, odd]);
        assert_eq!(ar.as_const(refl), Some(1));
        // Same id under Xor/Rem cancels; under Min/Max it collapses.
        let x = ar.op(OpTag::Bin(BinOp::Xor, Ty::U32), vec![odd, odd]);
        assert_eq!(ar.as_const(x), Some(0));
        let r = ar.op(OpTag::Bin(BinOp::Rem, Ty::U32), vec![odd, odd]);
        assert_eq!(ar.as_const(r), Some(0));
        let m = ar.op(OpTag::Bin(BinOp::Min, Ty::I32), vec![odd, one]);
        let m2 = ar.op(OpTag::Bin(BinOp::Min, Ty::I32), vec![one, odd]);
        assert_eq!(m, m2, "commutative int ops sort their operands");
    }

    #[test]
    fn negative_offsets_halve_arithmetically() {
        // 2a - 1 (wrapping-encoded) >> 1 = a - 1.
        let mut ar = Arena::new();
        let a = lid_atom(&mut ar);
        let one = ar.cst(1);
        let t = ar.mk_affine(u32::MAX, vec![(2, a)]);
        let sh = ar.op(OpTag::Bin(BinOp::Shr, Ty::U32), vec![t, one]);
        let expect = ar.mk_affine(u32::MAX, vec![(1, a)]);
        assert_eq!(sh, expect);
    }

    #[test]
    fn unsafe_folds_stay_opaque() {
        let mut ar = Arena::new();
        let a = lid_atom(&mut ar);
        let one = ar.cst(1);
        let odd = ar.mk_affine(1, vec![(2, a)]);
        // Odd coefficient: >> must not fold.
        let triple = ar.mk_affine(0, vec![(3, a)]);
        let sh = ar.op(OpTag::Bin(BinOp::Shr, Ty::U32), vec![triple, one]);
        assert!(matches!(ar.kinds[sh as usize], TermKind::Op { .. }));
        // Arithmetic i32 shift: no affine fold either.
        let shi = ar.op(OpTag::Bin(BinOp::Shr, Ty::I32), vec![odd, one]);
        assert!(matches!(ar.kinds[shi as usize], TermKind::Op { .. }));
        // Float equality never folds, even reflexively (NaN != NaN).
        let f = ar.op(OpTag::Cmp(CmpOp::Eq, Ty::F32), vec![a, a]);
        assert_eq!(ar.as_const(f), None);
        // Float binaries keep operand order (NaN payload asymmetry).
        let f1 = ar.op(OpTag::Bin(BinOp::Add, Ty::F32), vec![a, one]);
        let f2 = ar.op(OpTag::Bin(BinOp::Add, Ty::F32), vec![one, a]);
        assert_ne!(f1, f2);
    }

    fn structured_kernel() -> Kernel {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer_param("buf");
        let n = b.scalar_param("n", Ty::U32);
        let gid = b.global_id(0);
        let c = b.lt_u32(gid, n);
        b.if_(c, |b| {
            let a = b.elem_addr(buf, gid);
            let v = b.load_global(a);
            let two = b.const_u32(2);
            let v2 = b.mul_u32(v, two);
            b.store_global(a, v2);
        });
        let zero = b.const_u32(0);
        let four = b.const_u32(4);
        b.for_range(zero, four, |b, i| {
            let a = b.elem_addr(buf, i);
            let v = b.load_global(a);
            b.store_global(a, v);
        });
        b.finish()
    }

    #[test]
    fn self_check_proves_structured_kernel() {
        let r = self_check(&structured_kernel());
        assert!(r.proved(), "residue: {:?}", r.residue);
        assert_eq!(r.exits_proved, 2);
        assert_eq!(r.loops_proved, 1);
    }

    #[test]
    fn divergent_barrier_is_unsupported() {
        let mut b = KernelBuilder::new("bad");
        let lid = b.local_id(0);
        let n = b.const_u32(32);
        let c = b.lt_u32(lid, n);
        b.if_(c, |b| b.barrier());
        let k = b.finish();
        let r = self_check(&k);
        assert_eq!(r.residue.len(), 1);
        assert_eq!(r.residue[0].kind, ResidueKind::Unsupported);
    }

    /// Hand-built Intra-style pair: the original indexes by `global_id`,
    /// the "transformed" kernel recovers the logical id from the doubled
    /// launch (`raw >> 1`) and stores only on the consumer lane.
    fn intra_pair() -> (Kernel, Kernel, TvConfig, Reg) {
        let mut b = KernelBuilder::new("orig");
        let buf = b.buffer_param("buf");
        let gid = b.global_id(0);
        let a = b.elem_addr(buf, gid);
        let v = b.load_global(a);
        b.store_global(a, v);
        let orig = b.finish();

        let mut b = KernelBuilder::new("trans");
        let buf = b.buffer_param("buf");
        let raw = b.global_id(0);
        let one = b.const_u32(1);
        let gid = b.shr_u32(raw, one);
        let flag = b.and_u32(raw, one);
        let a = b.elem_addr(buf, gid);
        let v = b.load_global(a);
        b.if_(flag, |b| {
            b.store_global(a, v);
        });
        let trans = b.finish();

        let mut cfg = TvConfig {
            lds_relocation: 0,
            ..TvConfig::default()
        };
        cfg.trans_views
            .insert(Builtin::GlobalId(Dim(0)), BuiltinView::PairSplit);
        cfg.machinery_guards.insert(flag);
        (orig, trans, cfg, flag)
    }

    #[test]
    fn pair_split_view_recovers_logical_id() {
        let (orig, trans, cfg, _) = intra_pair();
        let r = validate_pair(&orig, &trans, &cfg);
        assert!(r.proved(), "residue: {:?}", r.residue);
        assert_eq!(r.exits_proved, 1);
    }

    #[test]
    fn wrong_remap_is_caught() {
        // Same pair, but the "transform" forgets the >> 1: addresses are
        // computed from the raw doubled id and cannot match.
        let (orig, _, cfg, _) = intra_pair();
        let mut b = KernelBuilder::new("bad");
        let buf = b.buffer_param("buf");
        let raw = b.global_id(0);
        let a = b.elem_addr(buf, raw);
        let v = b.load_global(a);
        b.store_global(a, v);
        let bad = b.finish();
        let r = validate_pair(&orig, &bad, &cfg);
        assert!(!r.proved());
        assert!(r
            .residue
            .iter()
            .any(|res| matches!(res.kind, ResidueKind::ExitAddr { index: 0 })));
    }

    /// Channel-equipped pair: the producer publishes address and value
    /// through comm slots, the consumer compares both against its own
    /// before storing.
    fn channel_pair(with_addr_cmp: bool, with_val_cmp: bool) -> (Kernel, Kernel, TvConfig) {
        let mut b = KernelBuilder::new("orig");
        let buf = b.buffer_param("buf");
        let gid = b.global_id(0);
        let a = b.elem_addr(buf, gid);
        let v = b.load_global(a);
        b.store_global(a, v);
        let orig = b.finish();

        let mut cfg = TvConfig {
            check_coverage: true,
            ..TvConfig::default()
        };
        cfg.trans_views
            .insert(Builtin::GlobalId(Dim(0)), BuiltinView::PairSplit);

        let mut b = KernelBuilder::new("trans");
        let buf = b.buffer_param("buf");
        let raw = b.global_id(0);
        let one = b.const_u32(1);
        let gid = b.shr_u32(raw, one);
        let flag = b.and_u32(raw, one);
        let a = b.elem_addr(buf, gid);
        let v = b.load_global(a);
        // Publish address and value into two comm slots.
        let slot_a = b.const_u32(1024);
        let slot_v = b.const_u32(1028);
        b.store_local(slot_a, a);
        b.store_local(slot_v, v);
        let shadow_a = b.load_local(slot_a);
        let shadow_v = b.load_local(slot_v);
        cfg.comm_addrs.insert(slot_a);
        cfg.comm_addrs.insert(slot_v);
        cfg.channel_values.insert(shadow_a);
        cfg.channel_values.insert(shadow_v);
        cfg.machinery_guards.insert(flag);
        b.if_(flag, |b| {
            if with_addr_cmp {
                let c = b.ne_u32(a, shadow_a);
                cfg.detect_compares.insert(c);
                cfg.machinery_guards.insert(c);
                b.if_(c, |_| {});
            }
            if with_val_cmp {
                let c = b.ne_u32(v, shadow_v);
                cfg.detect_compares.insert(c);
                cfg.machinery_guards.insert(c);
                b.if_(c, |_| {});
            }
            b.store_global(a, v);
        });
        let trans = b.finish();
        (orig, trans, cfg)
    }

    #[test]
    fn covered_exit_proves_both_obligations() {
        let (orig, trans, cfg) = channel_pair(true, true);
        let r = validate_pair(&orig, &trans, &cfg);
        assert!(r.proved(), "residue: {:?}", r.residue);
        assert_eq!(r.exits_proved, 1);
        assert_eq!(r.compares_proved, 2);
    }

    #[test]
    fn missing_compare_leaves_exit_uncovered() {
        let (orig, trans, cfg) = channel_pair(true, false);
        let r = validate_pair(&orig, &trans, &cfg);
        assert!(r.residue.iter().any(|res| matches!(
            res.kind,
            ResidueKind::CompareUncovered {
                exit: 0,
                operand: "value"
            }
        )));
        let (orig, trans, cfg) = channel_pair(false, true);
        let r = validate_pair(&orig, &trans, &cfg);
        assert!(r.residue.iter().any(|res| matches!(
            res.kind,
            ResidueKind::CompareUncovered {
                exit: 0,
                operand: "address"
            }
        )));
    }

    #[test]
    fn selective_exempts_unprotected_exits() {
        let (orig, trans, mut cfg) = channel_pair(false, false);
        let r = validate_pair(&orig, &trans, &cfg);
        assert!(!r.proved(), "unprotected exit must fail a full check");
        cfg.selective = true;
        let r = validate_pair(&orig, &trans, &cfg);
        assert!(r.proved(), "residue: {:?}", r.residue);
    }

    /// Replaces user reads of `b` with a `Mov` from `src` — the same
    /// rewrite the real transforms apply after emitting their prologue.
    fn replace_builtin_reads(insts: &mut [Inst], b: Builtin, src: Reg) {
        for inst in insts.iter_mut() {
            match inst {
                Inst::ReadBuiltin { dst, builtin } if *builtin == b => {
                    *inst = Inst::Mov { dst: *dst, src };
                }
                Inst::If {
                    then_blk, else_blk, ..
                } => {
                    replace_builtin_reads(&mut then_blk.0, b, src);
                    replace_builtin_reads(&mut else_blk.0, b, src);
                }
                Inst::While { cond, body, .. } => {
                    replace_builtin_reads(&mut cond.0, b, src);
                    replace_builtin_reads(&mut body.0, b, src);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn loop_conditions_prove_across_replicas() {
        // The transformed copy shares the original's user registers (as
        // the real transforms do), so loop havocs align; only the id
        // remap prologue is new.
        let mut b = KernelBuilder::new("orig");
        let buf = b.buffer_param("buf");
        let n = b.scalar_param("n", Ty::U32);
        let gid = b.global_id(0);
        let zero = b.const_u32(0);
        b.for_range(zero, n, |b, i| {
            let idx = b.add_u32(gid, i);
            let a = b.elem_addr(buf, idx);
            let v = b.load_global(a);
            b.store_global(a, v);
        });
        let orig = b.finish();

        let mut trans = orig.clone();
        trans.name = "trans".into();
        let raw = trans.fresh_reg();
        let one = trans.fresh_reg();
        let logical = trans.fresh_reg();
        replace_builtin_reads(&mut trans.body.0, Builtin::GlobalId(Dim(0)), logical);
        trans.body.0.splice(
            0..0,
            [
                Inst::ReadBuiltin {
                    dst: raw,
                    builtin: Builtin::GlobalId(Dim(0)),
                },
                Inst::Const {
                    dst: one,
                    ty: Ty::U32,
                    bits: 1,
                },
                Inst::Binary {
                    dst: logical,
                    op: BinOp::Shr,
                    ty: Ty::U32,
                    a: raw,
                    b: one,
                },
            ],
        );
        let mut cfg = TvConfig::default();
        cfg.trans_views
            .insert(Builtin::GlobalId(Dim(0)), BuiltinView::PairSplit);
        let r = validate_pair(&orig, &trans, &cfg);
        assert!(r.proved(), "residue: {:?}", r.residue);
        assert_eq!(r.loops_proved, 1);
        assert_eq!(r.exits_proved, 1);
    }

    #[test]
    fn reports_are_deterministic() {
        let (orig, trans, cfg) = channel_pair(true, false);
        let r1 = validate_pair(&orig, &trans, &cfg);
        let r2 = validate_pair(&orig, &trans, &cfg);
        assert_eq!(r1, r2);
        assert_eq!(format!("{:?}", r1.residue), format!("{:?}", r2.residue));
    }
}

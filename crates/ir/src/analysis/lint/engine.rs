//! Abstract interpretation engine shared by the lint passes.
//!
//! One walk over a kernel body produces everything the passes consume:
//!
//! * **memory accesses**, each with a symbolic address polynomial and the
//!   guard constraints active when it executes, partitioned into
//!   barrier-delimited *intervals* (the race detector's unit of work);
//! * **divergence diagnostics**: barriers reachable under non-uniform
//!   control flow, and swizzles whose enclosing guards can split a
//!   producer/consumer lane pair;
//! * **bounds diagnostics**: LDS accesses whose address provably exceeds
//!   the kernel's declared `lds_bytes`.
//!
//! Loops are handled by a numeric range pre-analysis (interval fixpoint
//! with widening) plus *phase unrolling*: the body is walked twice with
//! re-versioned loop-carried values, which pairs an iteration's tail
//! accesses against the next iteration's head accesses across the
//! back-edge. Loop-carried registers whose values cycle through a small
//! constant sequence (ping-pong buffers) keep their exact constants in
//! each phase; everything else is havocked to fresh range-bounded atoms.

use super::expr::{builtin_poly, rem_poly, shr_poly, Atoms, LintAssumptions, Poly, BIG};
use super::{Diagnostic, LintKind};
use crate::inst::{BinOp, Block, CmpOp, Inst, MemSpace, Reg, UnOp};
use crate::kernel::Kernel;
use crate::types::Ty;
use std::collections::{HashMap, HashSet};

/// How an access touches memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// `Load`.
    Read,
    /// `Store`.
    Write,
    /// `Atomic` (any RMW op) — atomics never race with each other.
    Atomic,
}

/// Relation of a guard constraint polynomial to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `poly == 0`.
    EqZero,
    /// `poly != 0`.
    NeZero,
    /// `poly <= 0`.
    LeZero,
}

/// One guard fact active at an access: `poly REL 0`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// The polynomial.
    pub poly: Poly,
    /// Its relation to zero.
    pub rel: Rel,
}

/// A memory access recorded by the walk.
#[derive(Debug, Clone)]
pub struct Access {
    /// Address space.
    pub space: MemSpace,
    /// Read / write / atomic.
    pub kind: AccessKind,
    /// Symbolic byte address.
    pub addr: Poly,
    /// Guard facts active when the access executes (per-item).
    pub constraints: Vec<Constraint>,
    /// `true` if any enclosing guard depends on data the domain cannot
    /// model (loads, float compares) — such accesses are never treated as
    /// *definitely* racing in bug-finder postures.
    pub opaque_guard: bool,
    /// Monotone program-point id (for deduplication and ordering).
    pub seq: usize,
    /// Short human-readable description.
    pub desc: String,
}

/// One barrier-delimited set of accesses that may execute concurrently.
pub type Interval = Vec<Access>;

/// Everything a walk produces.
#[derive(Debug)]
pub struct WalkOutput {
    /// Interned atoms (shared by all access polynomials).
    pub atoms: Atoms,
    /// Closed intervals; each is one *alternative* execution of a
    /// barrier-to-barrier region (uniform branches fork alternatives).
    pub intervals: Vec<Interval>,
    /// Divergence-family diagnostics found during the walk.
    pub divergence: Vec<Diagnostic>,
    /// LDS bounds diagnostics found during the walk.
    pub bounds: Vec<Diagnostic>,
}

/// Cached structure of a comparison, for guard refinement.
#[derive(Debug, Clone)]
struct CmpDef {
    op: CmpOp,
    ty: Ty,
    a: Poly,
    b: Poly,
}

#[derive(Debug, Clone)]
struct Guard {
    divergent: bool,
    pair_uniform: bool,
    opaque: bool,
    n_constraints: usize,
    /// Value of the engine clock when this guard was pushed (definitions
    /// with a later clock happened under the guard).
    push_clock: usize,
    /// Rendered condition, for diagnostics.
    desc: String,
}

/// Cap on simultaneously-open interval alternatives.
const MAX_ALTS: usize = 8;

pub(super) struct Engine<'a> {
    k: &'a Kernel,
    asm: LintAssumptions,
    atoms: Atoms,
    env: HashMap<Reg, Poly>,
    cmps: HashMap<Reg, CmpDef>,
    /// Open interval alternatives (accesses since the last barrier).
    open: Vec<Interval>,
    intervals: Vec<Interval>,
    guards: Vec<Guard>,
    constraints: Vec<Constraint>,
    divergence: Vec<Diagnostic>,
    bounds: Vec<Diagnostic>,
    seq: usize,
    /// Monotone instruction clock; `def_clock` records when a register was
    /// last defined, so the swizzle check can tell values produced inside
    /// a divergent region from values both pair lanes already hold.
    clock: usize,
    def_clock: HashMap<Reg, usize>,
    /// Opaque atoms proven *pair-uniform*: produced only from values that
    /// work-items `2k`/`2k+1` share (e.g. a load from a `lid0 >> 1`
    /// address). RMT-transformed kernels branch on such values, and both
    /// lanes of a pair take the same side.
    pair_atoms: HashSet<super::expr::AtomId>,
}

impl<'a> Engine<'a> {
    pub(super) fn new(k: &'a Kernel, asm: LintAssumptions) -> Self {
        Engine {
            k,
            asm,
            atoms: Atoms::new(),
            env: HashMap::new(),
            cmps: HashMap::new(),
            open: vec![Vec::new()],
            intervals: Vec::new(),
            guards: Vec::new(),
            constraints: Vec::new(),
            divergence: Vec::new(),
            bounds: Vec::new(),
            seq: 0,
            clock: 0,
            def_clock: HashMap::new(),
            pair_atoms: HashSet::new(),
        }
    }

    pub(super) fn run(mut self) -> WalkOutput {
        let body = self.k.body.clone();
        self.walk_block(&body);
        // Close the trailing interval.
        let open = std::mem::take(&mut self.open);
        self.intervals
            .extend(open.into_iter().filter(|i| !i.is_empty()));
        WalkOutput {
            atoms: self.atoms,
            intervals: self.intervals,
            divergence: self.divergence,
            bounds: self.bounds,
        }
    }

    fn poly(&mut self, r: Reg) -> Poly {
        match self.env.get(&r) {
            Some(p) => p.clone(),
            None => {
                // Use-before-def is `validate`'s job; stay total here.
                let a = self.atoms.fresh_opaque(true, 0, BIG);
                let p = Poly::atom(a);
                self.env.insert(r, p.clone());
                p
            }
        }
    }

    fn fresh(&mut self, lane: bool, lo: i128, hi: i128) -> Poly {
        Poly::atom(self.atoms.fresh_opaque(lane, lo, hi))
    }

    fn range(&self, p: &Poly) -> (i128, i128) {
        let (lo, hi) = p.eval_range(&self.atoms);
        (lo.max(-BIG), hi.min(BIG))
    }

    fn under_opaque_guard(&self) -> bool {
        self.guards.iter().any(|g| g.opaque)
    }

    /// A poly is *pair-uniform* if work-items `2k` and `2k+1` (adjacent in
    /// `local_id.0`) always observe the same value: no raw `local_id.0`,
    /// parity-bit, or unproven opaque lane dependence. `(lid0 + even) >> s`
    /// for `s ≥ 1` is pair-uniform (both lanes land in one block); lid1 and
    /// lid2 are too, because a pair never differs in those dims; opaque
    /// atoms are pair-uniform when they were derived only from pair-uniform
    /// values (tracked in `pair_atoms`).
    fn pair_uniform(&self, p: &Poly) -> bool {
        use super::expr::AtomKind;
        p.terms.keys().flatten().all(|&a| {
            let info = self.atoms.info(a);
            if !info.lane {
                return true;
            }
            match &info.kind {
                AtomKind::LocalId(0) => false,
                AtomKind::LocalId(_) => true,
                AtomKind::Quot { arg, shift } => self.pair_uniform_quot(arg, *shift),
                AtomKind::Rem { arg, .. } => self.pair_uniform(arg),
                _ => self.pair_atoms.contains(&a),
            }
        })
    }

    /// `arg >> shift` pair-uniformity: true when `arg` itself is
    /// pair-uniform, or when `arg = lid0 + even-valued pair-uniform rest`
    /// and `shift ≥ 1` — lanes `2k`/`2k+1` then read consecutive values
    /// starting on an even number, which share every `≥2`-sized block.
    fn pair_uniform_quot(&self, arg: &Poly, shift: u8) -> bool {
        use super::expr::AtomKind;
        if self.pair_uniform(arg) {
            return true;
        }
        if shift == 0 {
            return false;
        }
        let mut rest = arg.clone();
        let lid0_key = arg
            .terms
            .keys()
            .find(|m| m.len() == 1 && matches!(self.atoms.info(m[0]).kind, AtomKind::LocalId(0)))
            .cloned();
        let c0 = match &lid0_key {
            Some(k) => rest.terms.remove(k).unwrap_or(0),
            None => 0,
        };
        let other_lid0 = rest
            .terms
            .keys()
            .flatten()
            .any(|&a| matches!(self.atoms.info(a).kind, AtomKind::LocalId(0)));
        c0 == 1
            && !other_lid0
            && rest.k % 2 == 0
            && rest.terms.values().all(|c| c % 2 == 0)
            && self.pair_uniform(&rest)
    }

    /// Record that every opaque atom of `p` carries a pair-uniform value.
    fn mark_pair(&mut self, p: &Poly) {
        use super::expr::AtomKind;
        for m in p.terms.keys() {
            for &a in m {
                if matches!(self.atoms.info(a).kind, AtomKind::Opaque { .. }) {
                    self.pair_atoms.insert(a);
                }
            }
        }
    }

    fn record_access(&mut self, space: MemSpace, kind: AccessKind, addr: Poly, what: &str) {
        let seq = self.seq;
        self.seq += 1;
        let desc = format!("{what} {space}@{}", addr.render(&self.atoms));
        if space == MemSpace::Local {
            self.check_lds_bounds(&addr, &desc);
        }
        let mut constraints = self.constraints.clone();
        if space == MemSpace::Local && self.k.lds_bytes > 0 {
            // Race proofs may assume the access is in bounds (0 ≤ addr ≤
            // lds − 4): out-of-bounds traffic is undefined behaviour and
            // reported separately by the bounds pass. The assumption lets
            // the fact deriver tighten loop-carried strides (a Blelloch
            // `offset` cannot be 0 inside the sweep, or `offset·(2·lid+1)−1`
            // would go negative).
            constraints.push(Constraint {
                poly: addr.neg(),
                rel: Rel::LeZero,
            });
            constraints.push(Constraint {
                poly: addr.sub(&Poly::constant(self.k.lds_bytes as i64 - 4)),
                rel: Rel::LeZero,
            });
        }
        let acc = Access {
            space,
            kind,
            addr,
            constraints,
            opaque_guard: self.under_opaque_guard(),
            seq,
            desc,
        };
        for alt in &mut self.open {
            alt.push(acc.clone());
        }
    }

    /// Flags LDS accesses whose address is *provably* outside the declared
    /// allocation (definite-only: an unknown address is not flagged, and
    /// an access under unsatisfiable guards is dead code, not a bug).
    fn check_lds_bounds(&mut self, addr: &Poly, desc: &str) {
        let lds = self.k.lds_bytes as i128;
        let Some((lo, hi)) = super::races::refined_range(addr, &self.constraints, &self.atoms)
        else {
            return;
        };
        let definite_oob = lo >= lds || (lo == hi && lo + 3 >= lds) || hi < 0;
        if definite_oob && lo < BIG {
            self.bounds.push(Diagnostic {
                kind: LintKind::LdsOutOfBounds,
                message: format!(
                    "{desc}: address range [{lo}, {hi}] exceeds the {lds}-byte LDS allocation"
                ),
            });
        }
    }

    fn walk_block(&mut self, b: &Block) {
        for inst in b.iter() {
            self.walk_inst(inst);
        }
    }

    fn walk_inst(&mut self, inst: &Inst) {
        self.clock += 1;
        if let Some(d) = inst.dst() {
            self.def_clock.insert(d, self.clock);
        }
        match inst {
            Inst::Const { dst, bits, .. } => {
                self.env.insert(*dst, Poly::constant(*bits as i64));
            }
            Inst::Mov { dst, src } => {
                let p = self.poly(*src);
                self.env.insert(*dst, p);
            }
            Inst::ReadBuiltin { dst, builtin } => {
                let p = builtin_poly(&mut self.atoms, *builtin, &self.asm);
                self.env.insert(*dst, p);
            }
            Inst::ReadParam { dst, index } => {
                use super::expr::AtomKind;
                let a = self.atoms.intern(AtomKind::Param(*index), false, 0, BIG);
                self.env.insert(*dst, Poly::atom(a));
            }
            Inst::Unary { dst, op, a } => {
                let pu = {
                    let pa = self.poly(*a);
                    self.pair_uniform(&pa)
                };
                let p = self.eval_unary(*op, *a);
                if pu {
                    self.mark_pair(&p);
                }
                self.env.insert(*dst, p);
            }
            Inst::Binary { dst, op, ty, a, b } => {
                let pu = {
                    let pa = self.poly(*a);
                    let pb = self.poly(*b);
                    self.pair_uniform(&pa) && self.pair_uniform(&pb)
                };
                let p = self.eval_binary(*op, *ty, *a, *b);
                if pu {
                    self.mark_pair(&p);
                }
                self.env.insert(*dst, p);
            }
            Inst::Cmp { dst, op, ty, a, b } => {
                let pa = self.poly(*a);
                let pb = self.poly(*b);
                let pu = self.pair_uniform(&pa) && self.pair_uniform(&pb);
                let lane = pa.has_lane(&self.atoms) || pb.has_lane(&self.atoms);
                self.cmps.insert(
                    *dst,
                    CmpDef {
                        op: *op,
                        ty: *ty,
                        a: pa,
                        b: pb,
                    },
                );
                let p = self.fresh(lane, 0, 1);
                if pu {
                    self.mark_pair(&p);
                }
                self.env.insert(*dst, p);
            }
            Inst::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                let pt = self.poly(*if_true);
                let pf = self.poly(*if_false);
                if pt == pf {
                    self.env.insert(*dst, pt);
                } else {
                    let (tlo, thi) = self.range(&pt);
                    let (flo, fhi) = self.range(&pf);
                    let lane = true; // the selection itself is per-lane
                    let p = self.fresh(lane, tlo.min(flo), thi.max(fhi));
                    if self.pair_uniform(&pt) && self.pair_uniform(&pf) {
                        // Both arms pair-shared: the pick may differ, but
                        // the value observed by a pair cannot (a select's
                        // condition register is per-lane yet derived from
                        // the same operands; stay conservative only about
                        // the numeric range).
                        let pc = self.poly(*cond);
                        if self.pair_uniform(&pc) {
                            self.mark_pair(&p);
                        }
                    }
                    self.env.insert(*dst, p);
                }
            }
            Inst::Load { dst, space, addr } => {
                let pa = self.poly(*addr);
                self.record_access(*space, AccessKind::Read, pa.clone(), "load");
                // A global load from a lane-free address is treated as
                // group-uniform (the standard scalarization assumption);
                // LDS has no scalar port, so local loads stay per-lane.
                let lane = *space == MemSpace::Local || pa.has_lane(&self.atoms);
                let p = self.fresh(lane, 0, BIG);
                if self.pair_uniform(&pa) {
                    // Both lanes of a pair load the same location, so they
                    // observe the same value (within one barrier interval).
                    self.mark_pair(&p);
                }
                self.env.insert(*dst, p);
            }
            Inst::Store { space, addr, value } => {
                let _ = self.poly(*value);
                let pa = self.poly(*addr);
                self.record_access(*space, AccessKind::Write, pa, "store");
            }
            Inst::Atomic {
                dst, space, addr, ..
            } => {
                let pa = self.poly(*addr);
                self.record_access(*space, AccessKind::Atomic, pa, "atomic");
                if let Some(d) = dst {
                    let p = self.fresh(true, 0, BIG);
                    self.env.insert(*d, p);
                }
            }
            Inst::Barrier => {
                if let Some(g) = self.guards.iter().find(|g| g.divergent) {
                    let message = format!(
                        "barrier under potentially divergent control flow (guard on {}): \
                         work-items of one group may not all reach it",
                        g.desc
                    );
                    self.divergence.push(Diagnostic {
                        kind: LintKind::DivergentBarrier,
                        message,
                    });
                }
                let open = std::mem::take(&mut self.open);
                self.intervals
                    .extend(open.into_iter().filter(|i| !i.is_empty()));
                self.open = vec![Vec::new()];
            }
            Inst::Swizzle { dst, src, .. } => {
                // All swizzle modes exchange within an even/odd lane pair.
                // The exchange reads the source lane's register regardless
                // of its EXEC bit, so the hazard is *staleness*: a value
                // defined inside a guard that can split the pair may never
                // have been computed by the source lane. Values both lanes
                // defined before the guard are safe to exchange under it.
                let src_def = self.def_clock.get(src).copied().unwrap_or(0);
                if let Some(g) = self
                    .guards
                    .iter()
                    .find(|g| g.divergent && !g.pair_uniform && src_def > g.push_clock)
                {
                    let message = format!(
                        "swizzle of a value defined under a guard (on {}) that is not \
                         uniform across even/odd lane pairs: the source lane may never \
                         have computed it",
                        g.desc
                    );
                    self.divergence.push(Diagnostic {
                        kind: LintKind::DivergentSwizzle,
                        message,
                    });
                }
                let ps = self.poly(*src);
                let (lo, hi) = self.range(&ps);
                let p = self.fresh(true, lo.min(0), hi);
                if self.pair_uniform(&ps) {
                    // Exchanging a pair-shared value yields the same value.
                    self.mark_pair(&p);
                }
                self.env.insert(*dst, p);
            }
            Inst::If {
                cond,
                then_blk,
                else_blk,
            } => self.walk_if(*cond, then_blk, else_blk),
            Inst::While {
                cond,
                cond_reg,
                body,
            } => self.walk_while(cond, *cond_reg, body),
        }
    }

    fn eval_unary(&mut self, op: UnOp, a: Reg) -> Poly {
        let pa = self.poly(a);
        let (lo, hi) = self.range(&pa);
        let lane = pa.has_lane(&self.atoms);
        match op {
            UnOp::Neg => pa.neg(),
            UnOp::Abs => {
                if lo >= 0 {
                    pa
                } else {
                    self.fresh(lane, 0, hi.saturating_abs().max(lo.saturating_abs()))
                }
            }
            _ => self.fresh(lane, -BIG, BIG),
        }
    }

    fn eval_binary(&mut self, op: BinOp, ty: Ty, a: Reg, b: Reg) -> Poly {
        let pa = self.poly(a);
        let pb = self.poly(b);
        if ty == Ty::F32 {
            let lane = pa.has_lane(&self.atoms) || pb.has_lane(&self.atoms);
            return self.fresh(lane, -BIG, BIG);
        }
        let (alo, ahi) = self.range(&pa);
        let (blo, bhi) = self.range(&pb);
        let lane = pa.has_lane(&self.atoms) || pb.has_lane(&self.atoms);
        match op {
            BinOp::Add => pa.add(&pb),
            BinOp::Sub => pa.sub(&pb),
            BinOp::Mul => match pa.mul(&pb) {
                Some(p) => p,
                None => {
                    let cands = [
                        alo.saturating_mul(blo),
                        alo.saturating_mul(bhi),
                        ahi.saturating_mul(blo),
                        ahi.saturating_mul(bhi),
                    ];
                    self.fresh(
                        lane,
                        *cands.iter().min().unwrap(),
                        *cands.iter().max().unwrap(),
                    )
                }
            },
            BinOp::Shl => match pb.as_const() {
                Some(s) if (0..32).contains(&s) => pa.scale(1i64 << s),
                _ => self.fresh(lane, 0, BIG),
            },
            BinOp::Shr => match pb.as_const() {
                Some(s) if (0..32).contains(&s) && alo >= 0 => {
                    shr_poly(&mut self.atoms, &pa, s as u8)
                }
                _ => self.fresh(lane, 0, ahi.max(0)),
            },
            BinOp::And => {
                let mask = |p: &Poly| {
                    p.as_const()
                        .filter(|&m| m >= 0 && ((m + 1) as u64).is_power_of_two())
                };
                if let Some(m) = mask(&pb) {
                    if alo >= 0 {
                        return rem_poly(&mut self.atoms, &pa, (m + 1).trailing_zeros() as u8);
                    }
                }
                if let Some(m) = mask(&pa) {
                    if blo >= 0 {
                        return rem_poly(&mut self.atoms, &pb, (m + 1).trailing_zeros() as u8);
                    }
                }
                if alo >= 0 && blo >= 0 {
                    self.fresh(lane, 0, ahi.min(bhi))
                } else {
                    self.fresh(lane, -BIG, BIG)
                }
            }
            BinOp::Or | BinOp::Xor => {
                if alo >= 0 && blo >= 0 {
                    self.fresh(lane, 0, ahi.saturating_add(bhi))
                } else {
                    self.fresh(lane, -BIG, BIG)
                }
            }
            BinOp::Div => match pb.as_const() {
                Some(d) if d > 0 && (d as u64).is_power_of_two() && alo >= 0 => {
                    shr_poly(&mut self.atoms, &pa, d.trailing_zeros() as u8)
                }
                Some(d) if d > 0 && alo >= 0 => self.fresh(lane, alo / d as i128, ahi / d as i128),
                _ => self.fresh(lane, 0, ahi.max(0)),
            },
            BinOp::Rem => match pb.as_const() {
                Some(d) if d > 0 && (d as u64).is_power_of_two() && alo >= 0 => {
                    rem_poly(&mut self.atoms, &pa, d.trailing_zeros() as u8)
                }
                Some(d) if d > 0 => self.fresh(lane, 0, d as i128 - 1),
                _ => {
                    if in_bounds_positive(blo, bhi) {
                        self.fresh(lane, 0, bhi - 1)
                    } else {
                        self.fresh(lane, 0, ahi.max(0))
                    }
                }
            },
            BinOp::Min => self.fresh(lane, alo.min(blo), ahi.min(bhi)),
            BinOp::Max => self.fresh(lane, alo.max(blo), ahi.max(bhi)),
        }
    }

    /// Builds the guard fact for `cond` being true (or false).
    fn guard_constraint(&mut self, cond: Reg, taken: bool) -> Option<Constraint> {
        let def = self.cmps.get(&cond).cloned();
        if let Some(CmpDef { op, ty, a, b }) = def {
            if ty == Ty::F32 {
                return None;
            }
            let d = a.sub(&b);
            let one = Poly::constant(1);
            let (rel, poly) = match (op, taken) {
                (CmpOp::Eq, true) | (CmpOp::Ne, false) => (Rel::EqZero, d),
                (CmpOp::Ne, true) | (CmpOp::Eq, false) => (Rel::NeZero, d),
                (CmpOp::Lt, true) | (CmpOp::Ge, false) => (Rel::LeZero, d.add(&one)),
                (CmpOp::Le, true) | (CmpOp::Gt, false) => (Rel::LeZero, d),
                (CmpOp::Gt, true) | (CmpOp::Le, false) => (Rel::LeZero, d.neg().add(&one)),
                (CmpOp::Ge, true) | (CmpOp::Lt, false) => (Rel::LeZero, d.neg()),
            };
            return Some(Constraint { poly, rel });
        }
        // Non-comparison condition: constrain its value directly.
        let p = self.poly(cond);
        Some(Constraint {
            poly: p,
            rel: if taken { Rel::NeZero } else { Rel::EqZero },
        })
    }

    fn push_guard(&mut self, cond: Reg, taken: bool) {
        let (div, pair_u, opaque) = self.guard_shape(cond);
        let desc = self.guard_desc(cond);
        let mut n = 0;
        if let Some(c) = self.guard_constraint(cond, taken) {
            self.constraints.push(c);
            n = 1;
        }
        self.guards.push(Guard {
            divergent: div,
            pair_uniform: pair_u,
            opaque,
            n_constraints: n,
            push_clock: self.clock,
            desc,
        });
    }

    /// Rendered condition operands, for diagnostics.
    fn guard_desc(&mut self, cond: Reg) -> String {
        match self.cmps.get(&cond) {
            Some(c) => format!("{} vs {}", c.a.render(&self.atoms), c.b.render(&self.atoms)),
            None => self.poly(cond).render(&self.atoms),
        }
    }

    fn pop_guard(&mut self) {
        if let Some(g) = self.guards.pop() {
            for _ in 0..g.n_constraints {
                self.constraints.pop();
            }
        }
    }

    /// (divergent, pair_uniform, opaque) for a condition register.
    fn guard_shape(&mut self, cond: Reg) -> (bool, bool, bool) {
        use super::expr::AtomKind;
        let polys: Vec<Poly> = match self.cmps.get(&cond) {
            Some(c) => vec![c.a.clone(), c.b.clone()],
            None => vec![self.poly(cond)],
        };
        let mut div = false;
        let mut pair_u = true;
        let mut opaque = false;
        for p in &polys {
            if p.has_lane(&self.atoms) {
                div = true;
            }
            if !self.pair_uniform(p) {
                pair_u = false;
            }
            for m in p.terms.keys() {
                for &a in m {
                    let i = self.atoms.info(a);
                    if i.lane && matches!(i.kind, AtomKind::Opaque { .. }) {
                        opaque = true;
                    }
                }
            }
        }
        (div, pair_u, opaque)
    }

    fn walk_if(&mut self, cond: Reg, then_blk: &Block, else_blk: &Block) {
        let (div, pair_u, _) = self.guard_shape(cond);
        let pre_env = self.env.clone();
        let snapshot = self.open.clone();

        self.push_guard(cond, true);
        self.walk_block(then_blk);
        self.pop_guard();
        let open_t = std::mem::replace(&mut self.open, snapshot);
        let env_t = std::mem::replace(&mut self.env, pre_env.clone());

        self.push_guard(cond, false);
        self.walk_block(else_blk);
        self.pop_guard();
        let open_e = std::mem::take(&mut self.open);
        let env_e = std::mem::take(&mut self.env);

        // Merge interval alternatives. A divergent branch interleaves both
        // sides in one schedule; a uniform branch forks alternatives.
        self.open = if div && open_t.len() == open_e.len() {
            open_t
                .into_iter()
                .zip(open_e)
                .map(|(mut t, e)| {
                    let known: HashSet<usize> = t.iter().map(|a| a.seq).collect();
                    t.extend(e.into_iter().filter(|a| !known.contains(&a.seq)));
                    t
                })
                .collect()
        } else {
            let mut alts = open_t;
            alts.extend(open_e);
            while alts.len() > MAX_ALTS {
                let extra = alts.pop().unwrap();
                let last = alts.last_mut().unwrap();
                let known: HashSet<usize> = last.iter().map(|a| a.seq).collect();
                last.extend(extra.into_iter().filter(|a| !known.contains(&a.seq)));
            }
            alts
        };

        // Merge environments: registers that agree keep their value,
        // anything else becomes a fresh range-hull atom.
        self.env = self.merge_envs(&pre_env, env_t, env_e, pair_u);
    }

    fn merge_envs(
        &mut self,
        pre: &HashMap<Reg, Poly>,
        t: HashMap<Reg, Poly>,
        e: HashMap<Reg, Poly>,
        pair_u: bool,
    ) -> HashMap<Reg, Poly> {
        let mut out = HashMap::new();
        let regs: HashSet<Reg> = t.keys().chain(e.keys()).copied().collect();
        for r in regs {
            let vt = t.get(&r).or_else(|| pre.get(&r));
            let ve = e.get(&r).or_else(|| pre.get(&r));
            match (vt, ve) {
                (Some(a), Some(b)) if a == b => {
                    out.insert(r, a.clone());
                }
                (Some(a), Some(b)) => {
                    let (a, b) = (a.clone(), b.clone());
                    let (alo, ahi) = self.range(&a);
                    let (blo, bhi) = self.range(&b);
                    let lane = true; // value now depends on the branch taken
                    let p = self.fresh(lane, alo.min(blo), ahi.max(bhi));
                    if pair_u && self.pair_uniform(&a) && self.pair_uniform(&b) {
                        // Both lanes of a pair took the same side and both
                        // sides' values are pair-shared.
                        self.mark_pair(&p);
                    }
                    out.insert(r, p);
                }
                (Some(a), None) | (None, Some(a)) => {
                    let a = a.clone();
                    let (lo, hi) = self.range(&a);
                    let p = self.fresh(true, lo.min(0), hi);
                    if pair_u && self.pair_uniform(&a) {
                        self.mark_pair(&p);
                    }
                    out.insert(r, p);
                }
                (None, None) => {}
            }
        }
        out
    }

    fn walk_while(&mut self, cond: &Block, cond_reg: Reg, body: &Block) {
        // Concrete unrolling: a loop whose condition folds to a constant
        // every time around (counted loops over literal bounds — scan
        // sweeps, butterfly stages) is walked iteration by iteration, so
        // loop-carried scalars stay exact. The interval hull below loses
        // relational invariants (a Blelloch sweep keeps `offset · active`
        // constant) and would manufacture collisions between iterations
        // that can never coexist.
        const MAX_UNROLL: usize = 64;
        let mut unrolled = 0;
        while unrolled < MAX_UNROLL {
            match self.peek_cond_const(cond, cond_reg) {
                Some(false) => {
                    // Exit edge: run the condition block once for real
                    // (its definitions stay visible after the loop).
                    self.walk_block(cond);
                    return;
                }
                Some(true) => {
                    self.walk_block(cond);
                    self.walk_block(body);
                    unrolled += 1;
                }
                None => break,
            }
        }
        // The condition stopped folding (or the cap was hit): analyse the
        // remaining iterations with the hull/havoc scheme.

        // Registers written anywhere in the loop.
        let mut carried: Vec<Reg> = Vec::new();
        let mut seen = HashSet::new();
        collect_defs(cond, &mut |r| {
            if seen.insert(r) {
                carried.push(r);
            }
        });
        collect_defs(body, &mut |r| {
            if seen.insert(r) {
                carried.push(r);
            }
        });

        // Numeric pre-analysis: iterate the loop on interval ranges to a
        // fixpoint (with widening), giving each carried register a hull.
        let hulls = self.loop_hulls(cond, cond_reg, body, &carried);

        // Constant-cycle detection: a carried register whose value cycles
        // through constants with period ≤ 2 (ping-pong buffer offsets)
        // keeps its exact constants per phase.
        let c0: HashMap<Reg, i64> = self
            .env
            .iter()
            .filter_map(|(r, p)| p.as_const().map(|k| (*r, k)))
            .collect();
        let c1 = const_prop(cond, body, &c0);
        let c2 = const_prop(cond, body, &c1);
        let cyclic: HashMap<Reg, (i64, i64)> = carried
            .iter()
            .filter_map(|r| match (c0.get(r), c1.get(r), c2.get(r)) {
                (Some(&a), Some(&b), Some(&a2)) if a == a2 => Some((*r, (a, b))),
                _ => None,
            })
            .collect();

        let had_barrier = block_has_barrier(cond) || block_has_barrier(body);
        let snapshot = if had_barrier {
            Some(self.open.clone())
        } else {
            None
        };

        let (div, _, _) = self.guard_shape_for_loop(cond, cond_reg);
        if div && had_barrier {
            self.divergence.push(Diagnostic {
                kind: LintKind::DivergentBarrier,
                message: "barrier inside a loop with a potentially non-uniform trip \
                          count: work-items may disagree on the iteration reaching it"
                    .into(),
            });
        }

        // Two phases: pairs tail-of-iteration-k against head-of-k+1.
        for phase in 0..2u8 {
            for r in &carried {
                let p = match cyclic.get(r) {
                    Some(&(a, b)) => Poly::constant(if phase == 0 { a } else { b }),
                    None => {
                        let (lo, hi, lane) = hulls.get(r).copied().unwrap_or((0, BIG, true));
                        self.fresh(lane, lo, hi)
                    }
                };
                self.env.insert(*r, p);
            }
            self.walk_block(cond);
            let desc = self.guard_desc(cond_reg);
            let div_guard = Guard {
                divergent: div,
                pair_uniform: !div,
                opaque: false,
                n_constraints: match self.guard_constraint(cond_reg, true) {
                    Some(c) => {
                        self.constraints.push(c);
                        1
                    }
                    None => 0,
                },
                push_clock: self.clock,
                desc: format!("loop condition {desc}"),
            };
            self.guards.push(div_guard);
            self.walk_block(body);
            self.pop_guard();
        }

        // Post-loop state: carried registers are unknown within their hull
        // (except period-1 constants, which are genuinely stable).
        for r in &carried {
            let p = match cyclic.get(r) {
                Some(&(a, b)) if a == b => Poly::constant(a),
                _ => {
                    let (lo, hi, lane) = hulls.get(r).copied().unwrap_or((0, BIG, true));
                    self.fresh(lane, lo, hi)
                }
            };
            self.env.insert(*r, p);
        }

        // The zero-iteration path is an alternative schedule.
        if let Some(before) = snapshot {
            let mut alts = before;
            alts.extend(std::mem::take(&mut self.open));
            while alts.len() > MAX_ALTS {
                let extra = alts.pop().unwrap();
                let last = alts.last_mut().unwrap();
                let known: HashSet<usize> = last.iter().map(|a| a.seq).collect();
                last.extend(extra.into_iter().filter(|a| !known.contains(&a.seq)));
            }
            self.open = alts;
        }
    }

    /// Evaluates the loop condition on a scratch copy; `Some(taken)` when
    /// it folds to a constant under the current environment.
    fn peek_cond_const(&mut self, cond: &Block, cond_reg: Reg) -> Option<bool> {
        let env_save = self.env.clone();
        let cmps_save = self.cmps.clone();
        let open_save = std::mem::replace(&mut self.open, vec![Vec::new()]);
        let ivl_save = self.intervals.len();
        let div_save = self.divergence.len();
        let bnd_save = self.bounds.len();
        let seq_save = self.seq;
        self.walk_block(cond);
        let v = self.cond_const_value(cond_reg);
        self.env = env_save;
        self.cmps = cmps_save;
        self.open = open_save;
        self.intervals.truncate(ivl_save);
        self.divergence.truncate(div_save);
        self.bounds.truncate(bnd_save);
        self.seq = seq_save;
        v
    }

    fn cond_const_value(&mut self, cond_reg: Reg) -> Option<bool> {
        if let Some(c) = self.cmps.get(&cond_reg).cloned() {
            let a = c.a.as_const()?;
            let b = c.b.as_const()?;
            let (a, b) = if c.ty == Ty::U32 {
                (((a as u32) as i64), ((b as u32) as i64))
            } else {
                (a, b)
            };
            Some(match c.op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            })
        } else {
            self.poly(cond_reg).as_const().map(|v| v != 0)
        }
    }

    fn guard_shape_for_loop(&mut self, cond: &Block, cond_reg: Reg) -> (bool, bool, bool) {
        // Evaluate the condition block on a scratch copy to learn the
        // shape of `cond_reg` without recording accesses twice.
        let env_save = self.env.clone();
        let cmps_save = self.cmps.clone();
        let open_save = std::mem::replace(&mut self.open, vec![Vec::new()]);
        let ivl_save = self.intervals.len();
        let div_save = self.divergence.len();
        let bnd_save = self.bounds.len();
        let seq_save = self.seq;
        self.walk_block(cond);
        let shape = self.guard_shape(cond_reg);
        self.env = env_save;
        self.cmps = cmps_save;
        self.open = open_save;
        self.intervals.truncate(ivl_save);
        self.divergence.truncate(div_save);
        self.bounds.truncate(bnd_save);
        self.seq = seq_save;
        shape
    }

    /// Interval fixpoint over the loop: returns per-register numeric hulls
    /// (and laneness) that hold on entry to every iteration.
    fn loop_hulls(
        &mut self,
        cond: &Block,
        cond_reg: Reg,
        body: &Block,
        carried: &[Reg],
    ) -> HashMap<Reg, (i128, i128, bool)> {
        let mut num: HashMap<Reg, (i128, i128, bool)> = HashMap::new();
        for (r, p) in &self.env {
            let (lo, hi) = p.eval_range(&self.atoms);
            num.insert(*r, (lo, hi, p.has_lane(&self.atoms)));
        }
        let mut hull: HashMap<Reg, (i128, i128, bool)> = HashMap::new();
        for r in carried {
            if let Some(v) = num.get(r) {
                hull.insert(*r, *v);
            }
        }
        let mut cmp_defs: HashMap<Reg, (CmpOp, Reg, Reg)> = HashMap::new();
        for pass in 0..257 {
            let mut env = num.clone();
            walk_num(cond, &mut env, &mut cmp_defs);
            // Refine with the loop condition being true.
            if let Some(&(op, a, b)) = cmp_defs.get(&cond_reg) {
                refine_num(&mut env, op, a, b);
            }
            walk_num(body, &mut env, &mut cmp_defs);
            let mut changed = false;
            for r in carried {
                let cur = env.get(r).copied().unwrap_or((0, BIG, true));
                let h = hull.entry(*r).or_insert(cur);
                let joined = (h.0.min(cur.0), h.1.max(cur.1), h.2 || cur.2);
                if joined != *h {
                    *h = joined;
                    changed = true;
                }
                num.insert(*r, *h);
            }
            if !changed {
                break;
            }
            if pass == 256 {
                // Widen whatever is still moving.
                for r in carried {
                    let h = hull.entry(*r).or_insert((0, BIG, true));
                    h.1 = BIG;
                }
            }
        }
        hull
    }
}

fn in_bounds_positive(_blo: i128, bhi: i128) -> bool {
    bhi > 0 && bhi < BIG
}

/// Collects registers defined anywhere inside a block (recursive).
fn collect_defs(b: &Block, f: &mut impl FnMut(Reg)) {
    for inst in b.iter() {
        if let Some(d) = inst.dst() {
            f(d);
        }
        match inst {
            Inst::If {
                then_blk, else_blk, ..
            } => {
                collect_defs(then_blk, f);
                collect_defs(else_blk, f);
            }
            Inst::While { cond, body, .. } => {
                collect_defs(cond, f);
                collect_defs(body, f);
            }
            _ => {}
        }
    }
}

fn block_has_barrier(b: &Block) -> bool {
    let mut found = false;
    for inst in b.iter() {
        match inst {
            Inst::Barrier => found = true,
            Inst::If {
                then_blk, else_blk, ..
            } => found = found || block_has_barrier(then_blk) || block_has_barrier(else_blk),
            Inst::While { cond, body, .. } => {
                found = found || block_has_barrier(cond) || block_has_barrier(body)
            }
            _ => {}
        }
    }
    found
}

/// Straight-line constant propagation through one loop iteration
/// (cond then body). Anything assigned under control flow, from memory,
/// or from non-constant arithmetic becomes unknown.
fn const_prop(cond: &Block, body: &Block, init: &HashMap<Reg, i64>) -> HashMap<Reg, i64> {
    let mut env = init.clone();
    const_prop_block(cond, &mut env);
    const_prop_block(body, &mut env);
    env
}

fn const_prop_block(b: &Block, env: &mut HashMap<Reg, i64>) {
    for inst in b.iter() {
        match inst {
            Inst::Const { dst, bits, .. } => {
                env.insert(*dst, *bits as i64);
            }
            Inst::Mov { dst, src } => match env.get(src).copied() {
                Some(v) => {
                    env.insert(*dst, v);
                }
                None => {
                    env.remove(dst);
                }
            },
            Inst::Binary { dst, op, ty, a, b } if *ty != Ty::F32 => {
                let v = match (env.get(a), env.get(b)) {
                    (Some(&x), Some(&y)) => eval_const_binop(*op, x, y),
                    _ => None,
                };
                match v {
                    Some(v) => {
                        env.insert(*dst, v);
                    }
                    None => {
                        env.remove(dst);
                    }
                }
            }
            Inst::If {
                then_blk, else_blk, ..
            } => {
                // Branch-dependent values are not loop-phase constants.
                collect_defs(then_blk, &mut |r| {
                    env.remove(&r);
                });
                collect_defs(else_blk, &mut |r| {
                    env.remove(&r);
                });
            }
            Inst::While { cond, body, .. } => {
                collect_defs(cond, &mut |r| {
                    env.remove(&r);
                });
                collect_defs(body, &mut |r| {
                    env.remove(&r);
                });
            }
            other => {
                if let Some(d) = other.dst() {
                    env.remove(&d);
                }
            }
        }
    }
}

fn eval_const_binop(op: BinOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                0
            } else {
                x / y
            }
        }
        BinOp::Rem => {
            if y == 0 {
                0
            } else {
                x % y
            }
        }
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => ((x as u32) << ((y as u32) & 31)) as i64,
        BinOp::Shr => ((x as u32) >> ((y as u32) & 31)) as i64,
    })
}

/// Numeric interval transfer for one block (used by the loop pre-analysis).
fn walk_num(
    b: &Block,
    env: &mut HashMap<Reg, (i128, i128, bool)>,
    cmps: &mut HashMap<Reg, (CmpOp, Reg, Reg)>,
) {
    let get = |env: &HashMap<Reg, (i128, i128, bool)>, r: &Reg| {
        env.get(r).copied().unwrap_or((0, BIG, true))
    };
    for inst in b.iter() {
        match inst {
            Inst::Const { dst, bits, .. } => {
                env.insert(*dst, (*bits as i128, *bits as i128, false));
            }
            Inst::Mov { dst, src } => {
                let v = get(env, src);
                env.insert(*dst, v);
            }
            Inst::ReadBuiltin { dst, .. } => {
                env.insert(*dst, (0, BIG, true));
            }
            Inst::ReadParam { dst, .. } => {
                env.insert(*dst, (0, BIG, false));
            }
            Inst::Cmp { dst, op, a, b, .. } => {
                let la = get(env, a).2;
                let lb = get(env, b).2;
                cmps.insert(*dst, (*op, *a, *b));
                env.insert(*dst, (0, 1, la || lb));
            }
            Inst::Binary { dst, op, ty, a, b } => {
                let (alo, ahi, la) = get(env, a);
                let (blo, bhi, lb) = get(env, b);
                let lane = la || lb;
                let v = if *ty == Ty::F32 {
                    (-BIG, BIG, lane)
                } else {
                    num_binop(*op, (alo, ahi), (blo, bhi), lane)
                };
                env.insert(*dst, v);
            }
            Inst::Unary { dst, op, a } => {
                let (alo, ahi, lane) = get(env, a);
                let v = match op {
                    UnOp::Neg => (-ahi, -alo, lane),
                    UnOp::Abs if alo >= 0 => (alo, ahi, lane),
                    _ => (-BIG, BIG, lane),
                };
                env.insert(*dst, v);
            }
            Inst::Select {
                dst,
                if_true,
                if_false,
                ..
            } => {
                let t = get(env, if_true);
                let f = get(env, if_false);
                env.insert(*dst, (t.0.min(f.0), t.1.max(f.1), true));
            }
            Inst::Load { dst, space, addr } => {
                let lane = *space == MemSpace::Local || get(env, addr).2;
                env.insert(*dst, (0, BIG, lane));
            }
            Inst::Atomic { dst: Some(d), .. } => {
                env.insert(*d, (0, BIG, true));
            }
            Inst::Swizzle { dst, src, .. } => {
                let (lo, hi, _) = get(env, src);
                env.insert(*dst, (lo.min(0), hi, true));
            }
            Inst::If {
                then_blk, else_blk, ..
            } => {
                let mut et = env.clone();
                let mut ee = env.clone();
                walk_num(then_blk, &mut et, cmps);
                walk_num(else_blk, &mut ee, cmps);
                let regs: HashSet<Reg> = et.keys().chain(ee.keys()).copied().collect();
                for r in regs {
                    let t = get(&et, &r);
                    let e = get(&ee, &r);
                    env.insert(r, (t.0.min(e.0), t.1.max(e.1), t.2 || e.2));
                }
            }
            Inst::While {
                cond,
                cond_reg,
                body,
            } => {
                // Bounded inner fixpoint.
                for _ in 0..64 {
                    let before = env.clone();
                    walk_num(cond, env, cmps);
                    if let Some(&(op, a, b)) = cmps.get(cond_reg) {
                        refine_num(env, op, a, b);
                    }
                    walk_num(body, env, cmps);
                    let mut changed = false;
                    for (r, v) in env.iter_mut() {
                        if let Some(p) = before.get(r) {
                            let j = (p.0.min(v.0), p.1.max(v.1), p.2 || v.2);
                            if j != *v {
                                *v = j;
                                changed = true;
                            }
                        }
                    }
                    if !changed {
                        break;
                    }
                }
            }
            other => {
                if let Some(d) = other.dst() {
                    env.insert(d, (0, BIG, true));
                }
            }
        }
    }
}

fn num_binop(op: BinOp, a: (i128, i128), b: (i128, i128), lane: bool) -> (i128, i128, bool) {
    let (alo, ahi) = a;
    let (blo, bhi) = b;
    match op {
        BinOp::Add => (alo.saturating_add(blo), ahi.saturating_add(bhi), lane),
        BinOp::Sub => (alo.saturating_sub(bhi), ahi.saturating_sub(blo), lane),
        BinOp::Mul => {
            let c = [
                alo.saturating_mul(blo),
                alo.saturating_mul(bhi),
                ahi.saturating_mul(blo),
                ahi.saturating_mul(bhi),
            ];
            (*c.iter().min().unwrap(), *c.iter().max().unwrap(), lane)
        }
        BinOp::Shr if blo == bhi && (0..32).contains(&blo) && alo >= 0 => {
            (alo >> blo, ahi >> blo, lane)
        }
        BinOp::Shl if blo == bhi && (0..32).contains(&blo) && alo >= 0 => (
            alo.saturating_mul(1 << blo),
            ahi.saturating_mul(1 << blo),
            lane,
        ),
        BinOp::And if alo >= 0 && blo >= 0 => (0, ahi.min(bhi), lane),
        BinOp::Or | BinOp::Xor if alo >= 0 && blo >= 0 => (0, ahi.saturating_add(bhi), lane),
        BinOp::Div if blo == bhi && blo > 0 && alo >= 0 => (alo / blo, ahi / blo, lane),
        BinOp::Rem if blo > 0 && bhi < BIG => (0, bhi - 1, lane),
        BinOp::Min => (alo.min(blo), ahi.min(bhi), lane),
        BinOp::Max => (alo.max(blo), ahi.max(bhi), lane),
        _ => (-BIG, BIG, lane),
    }
}

/// Narrows `a` and `b`'s ranges assuming `a OP b` is true.
fn refine_num(env: &mut HashMap<Reg, (i128, i128, bool)>, op: CmpOp, a: Reg, b: Reg) {
    let ra = env.get(&a).copied();
    let rb = env.get(&b).copied();
    if let (Some((alo, ahi, la)), Some((blo, bhi, lb))) = (ra, rb) {
        let (na, nb) = match op {
            CmpOp::Lt => ((alo, ahi.min(bhi - 1)), (blo.max(alo + 1), bhi)),
            CmpOp::Le => ((alo, ahi.min(bhi)), (blo.max(alo), bhi)),
            CmpOp::Gt => ((alo.max(blo + 1), ahi), (blo, bhi.min(ahi - 1))),
            CmpOp::Ge => ((alo.max(blo), ahi), (blo, bhi.min(ahi))),
            CmpOp::Eq => ((alo.max(blo), ahi.min(bhi)), (blo.max(alo), bhi.min(ahi))),
            CmpOp::Ne => ((alo, ahi), (blo, bhi)),
        };
        env.insert(a, (na.0, na.1, la));
        env.insert(b, (nb.0, nb.1, lb));
    }
}

//! Divergence checking.
//!
//! The engine walk already classifies every guard (non-uniform vs.
//! group-uniform, pair-uniform vs. pair-splitting) from the symbolic
//! condition polynomials, which is strictly stronger than the syntactic
//! register taint in [`crate::validate`]: a condition on
//! `local_id >> 1` is correctly recognized as pair-uniform, and a
//! condition fed by an LDS load is correctly treated as divergent (the
//! LDS has no scalar path, so nothing proves all lanes read the same
//! value).
//!
//! Two instruction classes are policed:
//!
//! * **`Barrier`** under any guard (If or While) whose condition can
//!   differ between work-items of one group — a hang or undefined
//!   behaviour on real hardware (OpenCL 1.x barrier divergence rule).
//!   This generalizes the seed validator's "no barrier inside any If"
//!   rule to arbitrarily nested, *uniformity-aware* regions: a barrier
//!   under `if (n > 512)` with uniform `n` is fine.
//! * **`Swizzle`** under a guard that is not uniform across even/odd
//!   lane pairs. All [`crate::SwizzleMode`]s exchange within a pair, and
//!   GCN `ds_swizzle` reads the source VGPR regardless of EXEC mask, so
//!   a *pair-uniform* divergent guard (e.g. the RMT transforms' remapped
//!   `lid' == 0`) is still safe: both lanes of a pair are enabled
//!   together and the producer lane's register holds the live value. A
//!   guard on the raw lane id can split a pair and read stale data.
//!
//!   The rule is *staleness-aware*: only swizzle sources **defined while
//!   a pair-splitting guard is active** are flagged (tracked with a
//!   definition clock against the guard's push time). A value computed
//!   before the `if` is live in the disabled lane's register — GCN
//!   `ds_swizzle` reads it regardless of EXEC — so exchanging it inside
//!   the guard is well-defined. Pair-uniformity itself is closed over
//!   data flow: values loaded from pair-uniform addresses, and values
//!   merged from both branches of a pair-uniform `if`, compare equal
//!   across the pair and keep downstream guards pair-uniform.
//!
//! The checks run during the engine walk; this module packages them as a
//! standalone pass entry point.

use super::engine::Engine;
use super::expr::LintAssumptions;
use super::Diagnostic;
use crate::kernel::Kernel;

/// Runs only the divergence family on `kernel`.
pub fn check_divergence(kernel: &Kernel, asm: &LintAssumptions) -> Vec<Diagnostic> {
    Engine::new(kernel, *asm).run().divergence
}

//! Divergence checking.
//!
//! The engine walk already classifies every guard (non-uniform vs.
//! group-uniform, pair-uniform vs. pair-splitting) from the symbolic
//! condition polynomials, which is strictly stronger than the syntactic
//! register taint in [`crate::validate`]: a condition on
//! `local_id >> 1` is correctly recognized as pair-uniform, and a
//! condition fed by an LDS load is correctly treated as divergent (the
//! LDS has no scalar path, so nothing proves all lanes read the same
//! value).
//!
//! Two instruction classes are policed:
//!
//! * **`Barrier`** under any guard (If or While) whose condition can
//!   differ between work-items of one group — a hang or undefined
//!   behaviour on real hardware (OpenCL 1.x barrier divergence rule).
//!   This generalizes the seed validator's "no barrier inside any If"
//!   rule to arbitrarily nested, *uniformity-aware* regions: a barrier
//!   under `if (n > 512)` with uniform `n` is fine.
//! * **`Swizzle`** under a guard that is not uniform across even/odd
//!   lane pairs. All [`crate::SwizzleMode`]s exchange within a pair, and
//!   GCN `ds_swizzle` reads the source VGPR regardless of EXEC mask, so
//!   a *pair-uniform* divergent guard (e.g. the RMT transforms' remapped
//!   `lid' == 0`) is still safe: both lanes of a pair are enabled
//!   together and the producer lane's register holds the live value. A
//!   guard on the raw lane id can split a pair and read stale data.
//!
//!   The rule is *staleness-aware*: only swizzle sources **defined while
//!   a pair-splitting guard is active** are flagged (tracked with a
//!   definition clock against the guard's push time). A value computed
//!   before the `if` is live in the disabled lane's register — GCN
//!   `ds_swizzle` reads it regardless of EXEC — so exchanging it inside
//!   the guard is well-defined. Pair-uniformity itself is closed over
//!   data flow: values loaded from pair-uniform addresses, and values
//!   merged from both branches of a pair-uniform `if`, compare equal
//!   across the pair and keep downstream guards pair-uniform.
//!
//! The checks run during the engine walk; this module packages them as a
//! standalone pass entry point.

use super::engine::Engine;
use super::expr::LintAssumptions;
use super::Diagnostic;
use crate::analysis::uniformity::group_divergent_regs;
use crate::inst::{Inst, Reg};
use crate::kernel::Kernel;
use std::collections::HashSet;

/// `true` if any `Barrier` or `Swizzle` executes under a guard chain the
/// syntactic taint of [`group_divergent_regs`] considers divergent. Both
/// divergence diagnostic kinds require such a site: the symbolic guard
/// classification is strictly stronger than the taint (it proves more
/// guards uniform, never fewer), so when this over-approximation finds no
/// candidate site the engine cannot report one either.
fn has_tainted_sync_site(kernel: &Kernel) -> bool {
    let nu = group_divergent_regs(kernel);
    fn walk(insts: &[Inst], divergent: bool, nu: &HashSet<Reg>) -> bool {
        insts.iter().any(|inst| match inst {
            Inst::Barrier | Inst::Swizzle { .. } => divergent,
            Inst::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let div = divergent || nu.contains(cond);
                walk(&then_blk.0, div, nu) || walk(&else_blk.0, div, nu)
            }
            Inst::While {
                cond,
                cond_reg,
                body,
            } => {
                let div = divergent || nu.contains(cond_reg);
                walk(&cond.0, div, nu) || walk(&body.0, div, nu)
            }
            _ => false,
        })
    }
    walk(&kernel.body.0, false, &nu)
}

/// Runs only the divergence family on `kernel`.
///
/// Fast path: the shared taint fixpoint from
/// [`crate::analysis::uniformity`] screens the kernel first — when no
/// barrier or swizzle sits under even a coarsely-divergent guard, the
/// symbolic engine walk is skipped entirely.
pub fn check_divergence(kernel: &Kernel, asm: &LintAssumptions) -> Vec<Diagnostic> {
    if !has_tainted_sync_site(kernel) {
        debug_assert!(
            Engine::new(kernel, *asm).run().divergence.is_empty(),
            "taint pre-filter certified `{}` clean but the engine disagrees",
            kernel.name
        );
        return Vec::new();
    }
    Engine::new(kernel, *asm).run().divergence
}

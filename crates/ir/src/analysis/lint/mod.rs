//! Static analysis (lint) framework over the kernel IR.
//!
//! Three pass families, all driven by one symbolic walk of the kernel
//! ([`engine`]):
//!
//! 1. **Race detection** ([`races`]) — partitions memory accesses into
//!    barrier-delimited intervals and proves, per pair, that distinct
//!    work-items of a work-group cannot touch overlapping bytes (or flags
//!    the pair). LDS is held to a *verify* posture (unproven ⇒
//!    diagnostic); global memory to a *bug-finder* posture (only definite
//!    overlaps are reported), because data-dependent butterfly addressing
//!    (FFT/bitonic-style) is statically unprovable yet correct.
//! 2. **Divergence checking** ([`divergence`]) — barriers under
//!    non-uniform control flow and swizzles under pair-splitting guards.
//! 3. **LDS bounds** — accesses provably outside the declared
//!    `lds_bytes` allocation (definite-only).
//!
//! The RMT *transform-invariant* verifier (store-coverage and ticket
//! protocol shape) lives in `rmt-core::verify`, next to the transforms
//! whose output it checks; it consumes the same kernel IR.
//!
//! ### Assumptions
//!
//! * Launch geometry may be supplied via [`LintAssumptions`]; unknown
//!   work-group sizes weaken (never unsound-en) the proofs. Dimensions
//!   with an assumed size of 1 are treated as degenerate (ids are 0).
//! * Address arithmetic is ideal-integer: kernels relying on 32-bit
//!   wraparound to alias addresses are outside the domain.
//! * Race checking is scoped to work-items of **one work-group** (the
//!   GPUVerify-style reduction). Cross-group global traffic — e.g. the
//!   inter-group RMT full/empty communication protocol — is synchronized
//!   by atomics the interval model does not interpret, and is therefore
//!   out of scope by design.
//! * Scalar parameters are assumed non-negative (buffer bases and sizes).

pub mod divergence;
pub mod engine;
pub mod expr;
pub mod races;

pub use expr::LintAssumptions;

use crate::kernel::Kernel;

/// Which diagnostic a lint pass produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// Possible LDS data race within a barrier interval (verify posture).
    LocalRace,
    /// Definite global-memory data race within a work-group (bug-finder
    /// posture: only proven overlaps are reported).
    GlobalRace,
    /// Barrier reachable under divergent control flow.
    DivergentBarrier,
    /// Swizzle under a guard that can split an even/odd lane pair.
    DivergentSwizzle,
    /// LDS access provably outside the declared allocation.
    LdsOutOfBounds,
}

impl std::fmt::Display for LintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LintKind::LocalRace => "local-race",
            LintKind::GlobalRace => "global-race",
            LintKind::DivergentBarrier => "divergent-barrier",
            LintKind::DivergentSwizzle => "divergent-swizzle",
            LintKind::LdsOutOfBounds => "lds-out-of-bounds",
        };
        f.write_str(s)
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Category.
    pub kind: LintKind,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind, self.message)
    }
}

/// Pass selection for [`lint_kernel`].
#[derive(Debug, Clone, Copy)]
pub struct LintConfig {
    /// Launch-shape assumptions.
    pub assumptions: LintAssumptions,
    /// Run the barrier-interval race detector.
    pub races: bool,
    /// Run the divergence checker.
    pub divergence: bool,
    /// Run the LDS bounds checker.
    pub bounds: bool,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            assumptions: LintAssumptions::default(),
            races: true,
            divergence: true,
            bounds: true,
        }
    }
}

impl LintConfig {
    /// All passes, with the given launch assumptions.
    pub fn with_assumptions(assumptions: LintAssumptions) -> Self {
        LintConfig {
            assumptions,
            ..Default::default()
        }
    }
}

/// Runs the configured lint passes over `kernel` and returns every
/// finding, deduplicated, in a deterministic order.
pub fn lint_kernel(kernel: &Kernel, cfg: &LintConfig) -> Vec<Diagnostic> {
    let out = engine::Engine::new(kernel, cfg.assumptions).run();
    let mut diags: Vec<Diagnostic> = Vec::new();
    if cfg.divergence {
        diags.extend(out.divergence.iter().cloned());
    }
    if cfg.bounds {
        diags.extend(out.bounds.iter().cloned());
    }
    if cfg.races {
        for interval in &out.intervals {
            diags.extend(races::check_interval(
                interval,
                &out.atoms,
                &cfg.assumptions,
            ));
        }
    }
    // Alternatives and loop phases can rediscover the same finding.
    let mut seen = std::collections::HashSet::new();
    diags.retain(|d| seen.insert(format!("{d}")));
    diags
}

//! Barrier-interval data-race detection.
//!
//! Within one barrier-delimited interval, two accesses by *distinct*
//! work-items of the same work-group race if their byte ranges can
//! overlap and at least one is a non-atomic write. The prover tries, in
//! order:
//!
//! 1. **Range disjointness** — numeric and symbolic `[lo, hi]` bounds of
//!    the two address polynomials (guard constraints refine bounds; shared
//!    uniform atoms cancel exactly in the symbolic difference).
//! 2. **Difference analysis** — matched lane monomials become bounded
//!    `δ = m(x) − m(y)` variables; *radix forcing* zeroes any δ whose
//!    coefficient stride exceeds everything else's reach, and *content
//!    factoring* (common integer × uniform-monomial factor) proves
//!    non-representability of small differences.
//! 3. **Identity closure** — if every collision solution forces the two
//!    items' `local_id` coordinates equal, the "pair" is one work-item
//!    accessing program-ordered instructions: not a race. Quotient /
//!    remainder atoms over lid-linear arguments propagate (`δQ = 0` and
//!    `δR = 0` imply `δlid = 0`).
//! 4. **Wavefront lockstep** — colliding items confined to one aligned
//!    `2^s ≤ wavefront` block of `local_id.0` (and equal in higher dims)
//!    execute distinct instructions in program order: the paper's
//!    Section 6 argument for intra-group pair communication. Applies only
//!    across *different* program points; two lanes colliding in the same
//!    store instruction are still a race.
//!
//! Posture differs by space: **LDS is verified** (anything unproven is
//! flagged) because the suite's kernels index the LDS with analyzable
//! affine expressions; **global memory is bug-finding** (only definite
//! overlaps are flagged) because butterfly-style bit manipulation is
//! routinely unprovable, and cross-group global traffic is out of scope
//! (the inter-group RMT comm protocol synchronizes it by construction).

use super::engine::{Access, AccessKind, Constraint, Interval, Rel};
use super::expr::{AtomId, AtomKind, Atoms, LintAssumptions, Monomial, Poly, BIG};
use super::{Diagnostic, LintKind};
use crate::inst::MemSpace;
use std::collections::HashMap;

/// Facts derived from one access's guard constraints.
#[derive(Debug, Default)]
struct Facts {
    /// Atom pinned to an exact value.
    pins: HashMap<AtomId, i128>,
    /// Symbolic upper bound: atom ≤ poly (uniform).
    sym_hi: HashMap<AtomId, Poly>,
    /// Symbolic lower bound: atom ≥ poly (uniform).
    sym_lo: HashMap<AtomId, Poly>,
    /// Numeric refinements (intersected with the atom's own range).
    num: HashMap<AtomId, (i128, i128)>,
    /// The constraint set is unsatisfiable: the access cannot execute
    /// (e.g. it sits on a pruned zero-iteration loop alternative).
    infeasible: bool,
}

impl Facts {
    fn range(&self, a: AtomId, atoms: &Atoms) -> (i128, i128) {
        if let Some(&v) = self.pins.get(&a) {
            return (v, v);
        }
        let i = atoms.info(a);
        let (mut lo, mut hi) = (i.lo, i.hi);
        if let Some(&(nlo, nhi)) = self.num.get(&a) {
            lo = lo.max(nlo);
            hi = hi.min(nhi);
        }
        (lo, hi)
    }
}

fn derive_facts(constraints: &[Constraint], atoms: &Atoms) -> Facts {
    let mut f = Facts::default();
    for c in constraints {
        let mut p = c.poly.clone();
        match c.rel {
            Rel::EqZero => {
                // Normalize so single-atom handling sees a positive coeff.
                if p.terms.values().all(|&v| v < 0) && p.k <= 0 {
                    p = p.neg();
                }
                if p.terms.len() == 1 {
                    let (m, &ca) = p.terms.iter().next().unwrap();
                    if m.len() == 1 && ca != 0 && (-p.k) % ca == 0 {
                        f.pins.insert(m[0], (-p.k / ca) as i128);
                        continue;
                    }
                }
                // Split off a single lane atom: A + rest == 0 → A = −rest.
                if let Some((a, rest)) = isolate_atom(&p, atoms) {
                    let (rlo, rhi) = rest.eval_range(atoms);
                    if rlo == rhi {
                        f.pins.insert(a, -rlo);
                    } else {
                        f.sym_hi.insert(a, rest.neg());
                        f.sym_lo.insert(a, rest.neg());
                        refine(&mut f.num, a, -rhi, -rlo);
                    }
                    continue;
                }
                // Sum of nonneg monomials == 0 pins each single atom to 0
                // (the `local_linear_id == 0` idiom).
                let nonneg = p.k >= 0
                    && p.terms.values().all(|&v| v > 0)
                    && p.terms
                        .keys()
                        .all(|m| m.iter().all(|&a| atoms.info(a).lo >= 0));
                if nonneg {
                    for m in p.terms.keys() {
                        if m.len() == 1 {
                            f.pins.insert(m[0], 0);
                        }
                    }
                }
            }
            Rel::NeZero => {
                if p.terms.len() == 1 && p.terms.values().all(|&v| v != 0) {
                    let (m, &ca) = p.terms.iter().next().unwrap();
                    if m.len() == 1 && (-p.k) % ca == 0 {
                        let excl = (-p.k / ca) as i128;
                        let a = m[0];
                        let (lo, hi) = f.range(a, atoms);
                        if hi - lo == 1 {
                            // Two-valued atom with one endpoint excluded.
                            if excl == lo {
                                f.pins.insert(a, hi);
                            } else if excl == hi {
                                f.pins.insert(a, lo);
                            }
                        }
                    }
                }
            }
            Rel::LeZero => {
                // c·A + rest ≤ 0 with |c| == 1 and uniform rest.
                if let Some((a, coeff, rest)) = isolate_signed_atom(&p, atoms) {
                    let (rlo, rhi) = rest.eval_range(atoms);
                    if coeff == 1 {
                        // A ≤ −rest.
                        f.sym_hi.insert(a, rest.neg());
                        if rlo > -BIG {
                            refine(&mut f.num, a, -BIG, -rlo);
                        }
                    } else if coeff == -1 {
                        // A ≥ rest.
                        f.sym_lo.insert(a, rest.clone());
                        if rhi < BIG {
                            refine(&mut f.num, a, rlo, BIG);
                        }
                    }
                }
            }
        }
    }
    // Endpoint tightening from inequality constraints over products:
    // `P ≤ 0` rules an atom value `v` out whenever min(P | A = v) > 0.
    // This is what turns `0 ≤ offset·(2·lid+1)·4 − 4` (an in-bounds fact)
    // into `offset ≥ 1`. A few rounds suffice for the shapes we meet.
    for _ in 0..3 {
        let mut changed = false;
        for c in constraints {
            if c.rel != Rel::LeZero {
                continue;
            }
            let mut atoms_in: Vec<AtomId> = c.poly.terms.keys().flatten().copied().collect();
            atoms_in.sort();
            atoms_in.dedup();
            for a in atoms_in {
                let (lo, hi) = f.range(a, atoms);
                if lo >= hi || lo <= -BIG || f.pins.contains_key(&a) {
                    continue;
                }
                if eval_with_pin(&c.poly, atoms, &f, a, lo).0 > 0 {
                    refine(&mut f.num, a, lo + 1, BIG);
                    changed = true;
                }
                if hi < BIG && eval_with_pin(&c.poly, atoms, &f, a, hi).0 > 0 {
                    refine(&mut f.num, a, -BIG, hi - 1);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // A pin or numeric refinement that contradicts the atom's own range
    // (e.g. `if (lid == huge_const)` under a known local size) makes the
    // guarded region unreachable: pins short-circuit `Facts::range`, so
    // they must be checked against the intrinsic bounds explicitly.
    for (&a, &v) in &f.pins {
        let i = atoms.info(a);
        if v < i.lo || v > i.hi {
            f.infeasible = true;
        }
    }
    for (&a, &(nlo, nhi)) in &f.num {
        let i = atoms.info(a);
        if nlo.max(i.lo) > nhi.min(i.hi) {
            f.infeasible = true;
        }
    }
    // Unsatisfiable constraint set ⇒ the access never executes.
    for c in constraints {
        let (lo, hi) = eval_with(&c.poly, atoms, &f);
        let bad = match c.rel {
            Rel::EqZero => lo > 0 || hi < 0,
            Rel::NeZero => lo == 0 && hi == 0,
            Rel::LeZero => lo > 0,
        };
        if bad {
            f.infeasible = true;
        }
    }
    f
}

/// `eval_with`, with one atom overridden to an exact value.
fn eval_with_pin(p: &Poly, atoms: &Atoms, f: &Facts, a: AtomId, v: i128) -> (i128, i128) {
    let mut lo = p.k as i128;
    let mut hi = p.k as i128;
    for (m, &c) in &p.terms {
        let (mut mlo, mut mhi) = (1i128, 1i128);
        for &x in m {
            let (xlo, xhi) = if x == a { (v, v) } else { f.range(x, atoms) };
            let cands = [
                mlo.saturating_mul(xlo),
                mlo.saturating_mul(xhi),
                mhi.saturating_mul(xlo),
                mhi.saturating_mul(xhi),
            ];
            mlo = *cands.iter().min().unwrap();
            mhi = *cands.iter().max().unwrap();
        }
        let c = c as i128;
        let cands = [mlo.saturating_mul(c), mhi.saturating_mul(c)];
        lo = lo.saturating_add(*cands.iter().min().unwrap());
        hi = hi.saturating_add(*cands.iter().max().unwrap());
    }
    (lo, hi)
}

fn refine(num: &mut HashMap<AtomId, (i128, i128)>, a: AtomId, lo: i128, hi: i128) {
    let e = num.entry(a).or_insert((-BIG, BIG));
    e.0 = e.0.max(lo);
    e.1 = e.1.min(hi);
}

/// If `p` contains exactly one lane-atom term, a single atom with coeff 1,
/// and the rest is uniform, returns `(atom, rest)` with `p = A + rest`.
fn isolate_atom(p: &Poly, atoms: &Atoms) -> Option<(AtomId, Poly)> {
    match isolate_signed_atom(p, atoms) {
        Some((a, 1, rest)) => Some((a, rest)),
        _ => None,
    }
}

fn isolate_signed_atom(p: &Poly, atoms: &Atoms) -> Option<(AtomId, i64, Poly)> {
    let mut found: Option<(AtomId, i64)> = None;
    let mut rest = Poly::constant(p.k);
    for (m, &c) in &p.terms {
        let lane = m.iter().any(|&a| atoms.info(a).lane);
        if lane {
            if found.is_some() || m.len() != 1 || (c != 1 && c != -1) {
                return None;
            }
            found = Some((m[0], c));
        } else {
            rest.terms.insert(m.clone(), c);
        }
    }
    found.map(|(a, c)| (a, c, rest))
}

/// Constraint-refined numeric range of a polynomial (also used by the
/// engine's LDS bounds check). `None` means the constraint set is
/// unsatisfiable — the access sits in dead code and never executes.
pub(super) fn refined_range(
    p: &Poly,
    constraints: &[Constraint],
    atoms: &Atoms,
) -> Option<(i128, i128)> {
    let f = derive_facts(constraints, atoms);
    if f.infeasible {
        return None;
    }
    Some(eval_with(p, atoms, &f))
}

fn eval_with(p: &Poly, atoms: &Atoms, f: &Facts) -> (i128, i128) {
    let mut lo = p.k as i128;
    let mut hi = p.k as i128;
    for (m, &c) in &p.terms {
        let (mlo, mhi) = mono_range(m, atoms, f);
        let c = c as i128;
        let cands = [mlo.saturating_mul(c), mhi.saturating_mul(c)];
        lo = lo.saturating_add(*cands.iter().min().unwrap());
        hi = hi.saturating_add(*cands.iter().max().unwrap());
    }
    (lo, hi)
}

fn mono_range(m: &Monomial, atoms: &Atoms, f: &Facts) -> (i128, i128) {
    let (mut lo, mut hi) = (1i128, 1i128);
    for &a in m {
        let (alo, ahi) = f.range(a, atoms);
        let cands = [
            lo.saturating_mul(alo),
            lo.saturating_mul(ahi),
            hi.saturating_mul(alo),
            hi.saturating_mul(ahi),
        ];
        lo = *cands.iter().min().unwrap();
        hi = *cands.iter().max().unwrap();
    }
    (lo, hi)
}

/// Symbolic `[lo, hi]` bounds as polynomials over uniform atoms:
/// substitutes each lane monomial by pin / guard-bound / numeric-range
/// polynomials. `None` if some lane monomial is unbounded.
fn sym_bounds(p: &Poly, atoms: &Atoms, f: &Facts) -> Option<(Poly, Poly)> {
    let (lane, unif) = p.split_lane(atoms);
    let mut lo = unif.clone();
    let mut hi = unif;
    for (m, &c) in &lane.terms {
        let (blo, bhi) = if m.len() == 1 {
            atom_bounds(m[0], atoms, f)?
        } else {
            let (nlo, nhi) = mono_range(m, atoms, f);
            if nlo <= -BIG || nhi >= BIG {
                return None;
            }
            (Poly::constant(nlo as i64), Poly::constant(nhi as i64))
        };
        if c > 0 {
            lo = lo.add(&blo.scale(c));
            hi = hi.add(&bhi.scale(c));
        } else {
            lo = lo.add(&bhi.scale(c));
            hi = hi.add(&blo.scale(c));
        }
    }
    Some((lo, hi))
}

fn atom_bounds(a: AtomId, atoms: &Atoms, f: &Facts) -> Option<(Poly, Poly)> {
    if let Some(&v) = f.pins.get(&a) {
        let p = Poly::constant(v as i64);
        return Some((p.clone(), p));
    }
    let (nlo, nhi) = f.range(a, atoms);
    let lo = match f.sym_lo.get(&a) {
        Some(p) => p.clone(),
        None if nlo > -BIG => Poly::constant(nlo as i64),
        None => return None,
    };
    let hi = match f.sym_hi.get(&a) {
        Some(p) => p.clone(),
        None if nhi < BIG => Poly::constant(nhi as i64),
        None => return None,
    };
    Some((lo, hi))
}

/// Bounds of `addr1(x) − addr2(y)` with the atoms in `split` fixed to an
/// exact δ and the other matched singleton lane monomials replaced by
/// differences of their per-side symbolic bounds (so shared uniform terms
/// cancel). Unmatched or compound monomials fall back to independent
/// numeric ranges. `None` when a needed bound is unavailable.
fn sym_diff_range(
    a1: &Access,
    a2: &Access,
    atoms: &Atoms,
    f1: &Facts,
    f2: &Facts,
    fu: &Facts,
    split: &HashMap<AtomId, i128>,
) -> Option<(i128, i128)> {
    let (lane1, unif1) = a1.addr.split_lane(atoms);
    let (lane2, unif2) = a2.addr.split_lane(atoms);
    let base = unif1.sub(&unif2);
    let mut lo = base.clone();
    let mut hi = base;
    let mut extra_lo = 0i128;
    let mut extra_hi = 0i128;
    let mut keys: Vec<&Monomial> = lane1.terms.keys().chain(lane2.terms.keys()).collect();
    keys.sort();
    keys.dedup();
    for m in keys {
        let c1 = lane1.terms.get(m).copied().unwrap_or(0);
        let c2 = lane2.terms.get(m).copied().unwrap_or(0);
        let (lm, um) = split_mono(m, atoms);
        if c1 == c2 && lm.len() == 1 && um.is_empty() {
            let a = lm[0];
            if let Some(&d) = split.get(&a) {
                let folded = i64::try_from((c1 as i128).saturating_mul(d)).ok()?;
                lo.k = lo.k.saturating_add(folded);
                hi.k = hi.k.saturating_add(folded);
                continue;
            }
            let (b1lo, b1hi) = atom_bounds(a, atoms, f1)?;
            let (b2lo, b2hi) = atom_bounds(a, atoms, f2)?;
            let dlo = b1lo.sub(&b2hi);
            let dhi = b1hi.sub(&b2lo);
            if c1 > 0 {
                lo = lo.add(&dlo.scale(c1));
                hi = hi.add(&dhi.scale(c1));
            } else {
                lo = lo.add(&dhi.scale(c1));
                hi = hi.add(&dlo.scale(c1));
            }
        } else {
            // Independent per-side ranges; no cancellation.
            for (c, f) in [(c1, f1), (-c2, f2)] {
                if c == 0 {
                    continue;
                }
                let (mlo, mhi) = mono_range(m, atoms, f);
                let cands = [mlo.saturating_mul(c as i128), mhi.saturating_mul(c as i128)];
                extra_lo = extra_lo.saturating_add(*cands.iter().min().unwrap());
                extra_hi = extra_hi.saturating_add(*cands.iter().max().unwrap());
            }
        }
    }
    let (plo, _) = eval_with(&lo, atoms, fu);
    let (_, phi) = eval_with(&hi, atoms, fu);
    Some((plo.saturating_add(extra_lo), phi.saturating_add(extra_hi)))
}

/// One bounded integer contribution to the address difference
/// `addr1(x) − addr2(y)`.
#[derive(Debug, Clone)]
struct Var {
    /// Integer coefficient.
    c: i64,
    /// Uniform monomial factor (same value for both items).
    umono: Monomial,
    /// Range of the lane-dependent factor (a δ for matched terms).
    lo: i128,
    hi: i128,
    /// Lane factor (single atom if trackable).
    lane_atom: Option<AtomId>,
    /// `true` for `m(x) − m(y)` terms (zero is always inside the range).
    matched: bool,
}

/// Result of comparing one access pair.
#[derive(Debug, PartialEq, Eq)]
enum Verdict {
    /// Byte ranges proven disjoint (or collision infeasible).
    Disjoint,
    /// Every collision forces the two items to be the same work-item.
    SameItem,
    /// Colliding items share an aligned sub-wavefront block and the two
    /// program points are distinct: ordered by SIMT lockstep.
    SameWavefront,
    /// Overlap not excluded. `definite` = a collision is proven feasible
    /// (not merely unexcluded).
    Overlap { definite: bool },
}

fn split_mono(m: &Monomial, atoms: &Atoms) -> (Monomial, Monomial) {
    let mut lane = Vec::new();
    let mut unif = Vec::new();
    for &a in m {
        if atoms.info(a).lane {
            lane.push(a);
        } else {
            unif.push(a);
        }
    }
    (lane, unif)
}

fn check_pair(a1: &Access, a2: &Access, atoms: &Atoms, asm: &LintAssumptions) -> Verdict {
    let f1 = derive_facts(&a1.constraints, atoms);
    let f2 = derive_facts(&a2.constraints, atoms);
    if f1.infeasible || f2.infeasible {
        // One side sits on an unreachable alternative (e.g. the skipped
        // path of a loop whose condition is constant-true on entry).
        return Verdict::Disjoint;
    }

    // --- 1. Range disjointness (numeric, then symbolic). ---
    let (lo1, hi1) = eval_with(&a1.addr, atoms, &f1);
    let (lo2, hi2) = eval_with(&a2.addr, atoms, &f2);
    if lo2.saturating_sub(hi1) >= 4 || lo1.saturating_sub(hi2) >= 4 {
        return Verdict::Disjoint;
    }
    if let (Some((slo1, shi1)), Some((slo2, shi2))) = (
        sym_bounds(&a1.addr, atoms, &f1),
        sym_bounds(&a2.addr, atoms, &f2),
    ) {
        // Shared uniform atoms cancel exactly in the difference.
        let gap_a = slo2.sub(&shi1).eval_range(atoms).0;
        let gap_b = slo1.sub(&shi2).eval_range(atoms).0;
        if gap_a >= 4 || gap_b >= 4 {
            return Verdict::Disjoint;
        }
    }

    // --- 2. Difference analysis. ---
    let (lane1, unif1) = a1.addr.split_lane(atoms);
    let (lane2, unif2) = a2.addr.split_lane(atoms);
    let mut d0 = unif1.sub(&unif2);
    let mut vars: Vec<Var> = Vec::new();
    let mut opaque_addr = false;

    let mut keys: Vec<&Monomial> = lane1.terms.keys().chain(lane2.terms.keys()).collect();
    keys.sort();
    keys.dedup();
    for m in keys {
        let c1 = lane1.terms.get(m).copied().unwrap_or(0);
        let c2 = lane2.terms.get(m).copied().unwrap_or(0);
        let (lm, um) = split_mono(m, atoms);
        if lm
            .iter()
            .any(|&a| matches!(atoms.info(a).kind, AtomKind::Opaque { .. }))
        {
            opaque_addr = true;
        }
        let lane_atom = if lm.len() == 1 { Some(lm[0]) } else { None };
        if c1 == c2 {
            // Matched term: δ = lane(x) − lane(y).
            let (l1, h1) = mono_range(&lm, atoms, &f1);
            let (l2, h2) = mono_range(&lm, atoms, &f2);
            let (dlo, dhi) = (l1.saturating_sub(h2), h1.saturating_sub(l2));
            if dlo == dhi && lane_atom.is_none() {
                // Exact known δ of an untrackable (compound) lane monomial
                // folds into the constant part. Singleton atoms keep their
                // Var so the identity closure sees the exact δ.
                if let Ok(d) = i64::try_from(dlo) {
                    let folded = c1.saturating_mul(d);
                    if um.is_empty() {
                        d0.k = d0.k.saturating_add(folded);
                    } else if folded != 0 {
                        let e = d0.terms.entry(um.clone()).or_insert(0);
                        *e = e.saturating_add(folded);
                        if *e == 0 {
                            d0.terms.remove(&um);
                        }
                    }
                    continue;
                }
            }
            vars.push(Var {
                c: c1,
                umono: um,
                lo: dlo,
                hi: dhi,
                lane_atom,
                matched: true,
            });
        } else {
            for (c, f, side1) in [(c1, &f1, true), (c2, &f2, false)] {
                if c == 0 {
                    continue;
                }
                let (l, h) = mono_range(&lm, atoms, f);
                let c = if side1 { c } else { -c };
                vars.push(Var {
                    c,
                    umono: um.clone(),
                    lo: l,
                    hi: h,
                    lane_atom,
                    matched: false,
                });
            }
        }
    }

    // Uniform atoms hold one value for both items: intersect refinements.
    let mut fu = Facts::default();
    for f in [&f1, &f2] {
        for (&a, &v) in &f.pins {
            fu.pins.insert(a, v);
        }
        for (&a, &(lo, hi)) in &f.num {
            refine(&mut fu.num, a, lo, hi);
        }
    }
    let (d0lo, d0hi) = eval_with(&d0, atoms, &fu);

    // --- 1b. Case-split symbolic difference: enumerate the values of
    // small matched lane atoms (pair flags, parity bits) and prove every
    // case disjoint. This resolves transformed-kernel addresses of the
    // shape `replica·lds + f(lid')`, where the replica flag's ±lds stride
    // overlaps numerically but each fixed flag-δ leaves a symbolically
    // disjoint remainder. ---
    {
        let mut split_atoms: Vec<(AtomId, i128, i128)> = Vec::new();
        for v in &vars {
            if !v.matched || !v.umono.is_empty() || v.lo >= v.hi || v.hi - v.lo > 2 {
                continue;
            }
            if let Some(a) = v.lane_atom {
                // The atom must appear only as a singleton monomial, so a
                // fixed δ translates into an exact contribution.
                let singleton = [&a1.addr, &a2.addr]
                    .iter()
                    .all(|p| p.terms.keys().all(|m| !m.contains(&a) || m.len() == 1));
                if singleton {
                    split_atoms.push((a, v.lo, v.hi));
                }
            }
        }
        split_atoms.truncate(2);
        if !split_atoms.is_empty() {
            let mut combos: Vec<HashMap<AtomId, i128>> = vec![HashMap::new()];
            for &(a, lo, hi) in &split_atoms {
                let mut next = Vec::new();
                for d in lo..=hi {
                    for c in &combos {
                        let mut c2 = c.clone();
                        c2.insert(a, d);
                        next.push(c2);
                    }
                }
                combos = next;
            }
            let all_disjoint = combos.iter().all(|split| {
                matches!(
                    sym_diff_range(a1, a2, atoms, &f1, &f2, &fu, split),
                    Some((lo, hi)) if lo >= 4 || hi <= -4
                )
            });
            if all_disjoint {
                return Verdict::Disjoint;
            }
        }
    }

    // Interval feasibility of Σ c·U·v + d0 ∈ [−3, 3].
    let contrib = |v: &Var, atoms: &Atoms, fu: &Facts| -> (i128, i128) {
        let (ulo, uhi) = mono_range(&v.umono, atoms, fu);
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for u in [ulo, uhi] {
            for x in [v.lo, v.hi] {
                let val = (v.c as i128).saturating_mul(u).saturating_mul(x);
                lo = lo.min(val);
                hi = hi.max(val);
            }
        }
        (lo, hi)
    };
    let total = |vars: &[Var]| -> (i128, i128) {
        let mut lo = d0lo;
        let mut hi = d0hi;
        for v in vars {
            let (clo, chi) = contrib(v, atoms, &fu);
            lo = lo.saturating_add(clo);
            hi = hi.saturating_add(chi);
        }
        (lo, hi)
    };
    let (tlo, thi) = total(&vars);
    if tlo > 3 || thi < -3 {
        return Verdict::Disjoint;
    }

    // Radix forcing: a matched δ whose minimum step exceeds everything
    // else's reach must be zero in any collision.
    loop {
        let mut forced = None;
        for (i, v) in vars.iter().enumerate() {
            if !v.matched || (v.lo == 0 && v.hi == 0) {
                continue;
            }
            let (ulo, _) = mono_range(&v.umono, atoms, &fu);
            let step = (v.c.unsigned_abs() as i128).saturating_mul(ulo.max(0));
            if step == 0 {
                continue;
            }
            let mut reach = d0lo.saturating_abs().max(d0hi.saturating_abs());
            for (j, w) in vars.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (clo, chi) = contrib(w, atoms, &fu);
                reach = reach.saturating_add(clo.saturating_abs().max(chi.saturating_abs()));
            }
            if step > reach.saturating_add(3) {
                forced = Some(i);
                break;
            }
        }
        match forced {
            Some(i) => {
                vars[i].lo = 0;
                vars[i].hi = 0;
            }
            None => break,
        }
    }
    let (tlo, thi) = total(&vars);
    if tlo > 3 || thi < -3 {
        return Verdict::Disjoint;
    }

    // Content factoring: factor the common integer gcd (with uniform-
    // monomial d0 support) and test representability of [−3, 3].
    {
        let mut g: i128 = 0;
        let mut live = false;
        for v in &vars {
            if v.lo == 0 && v.hi == 0 {
                continue;
            }
            live = true;
            g = gcd(g, v.c.unsigned_abs() as i128);
        }
        // Fold d0's content in too: factoring still applies when the
        // uniform offset shares a (smaller) factor with the var strides,
        // e.g. `8·Q·δ + 4·Q` factors as `4Q·(2δ + 1)` — and `2δ + 1` is
        // never zero.
        g = gcd(g, d0.k.unsigned_abs() as i128);
        for &c in d0.terms.values() {
            g = gcd(g, c.unsigned_abs() as i128);
        }
        if live && g > 1 {
            // Common uniform-monomial factor of all live vars and d0.
            let mut common: Option<Monomial> = None;
            for v in &vars {
                if v.lo == 0 && v.hi == 0 {
                    continue;
                }
                common = Some(match common {
                    None => v.umono.clone(),
                    Some(c) => mono_intersect(&c, &v.umono),
                });
            }
            let mut common = common.unwrap_or_default();
            for m in d0.terms.keys() {
                common = mono_intersect(&common, m);
            }
            if d0.k != 0 {
                common.clear();
            }
            if let Some(d0g) = divide_poly(&d0, g, &common) {
                // T = F · (Σ c'·v + d0'), F = g·common.
                let (flo, _) = mono_range(&common, atoms, &fu);
                let fmin = g.saturating_mul(flo.max(0));
                if fmin >= 4 {
                    // Need the reduced sum to be exactly zero.
                    let rg = vars
                        .iter()
                        .filter(|v| !(v.lo == 0 && v.hi == 0))
                        .fold(0i128, |acc, v| gcd(acc, (v.c.unsigned_abs() as i128) / g));
                    let (rdlo, rdhi) = eval_with(&d0g, atoms, &fu);
                    if rg > 1 && rdlo == rdhi && rdlo % rg != 0 {
                        return Verdict::Disjoint;
                    }
                }
            }
        }
    }

    // --- 3. Identity closure: are the colliding items the same item? ---
    let mut known: HashMap<AtomId, Option<i128>> = HashMap::new(); // None = unknown δ
    for v in &vars {
        // Only matched vars are true δ values; one-sided vars carry the
        // raw value range of a single item.
        if !v.matched {
            continue;
        }
        if let Some(a) = v.lane_atom {
            let (ulo, _) = mono_range(&v.umono, atoms, &fu);
            if v.lo == 0 && v.hi == 0 && ulo >= 1 {
                known.insert(a, Some(0));
            } else if v.lo == v.hi && ulo >= 1 {
                known.insert(a, Some(v.lo));
            }
        }
    }
    // Pins on lane atoms give exact δ even for atoms not in the address.
    for (&a, &p1) in &f1.pins {
        if atoms.info(a).lane {
            if let Some(&p2) = f2.pins.get(&a) {
                known.entry(a).or_insert(Some(p1 - p2));
            }
        }
    }

    let wave = asm.wave() as i128;
    let mut all_identity_zero = true;
    let mut same_block = false;
    let mut higher_dims_ok = true;
    let mut identity_seen = false;
    for d in 0..3u8 {
        let lid = match find_atom(atoms, &AtomKind::LocalId(d)) {
            Some(a) => a,
            None => continue, // degenerate or unread dimension
        };
        identity_seen = true;
        let (delta, block) = resolve_lid_delta(lid, atoms, &known, wave);
        match delta {
            Some(0) => {}
            _ => {
                all_identity_zero = false;
                if d == 0 {
                    same_block = block;
                } else {
                    higher_dims_ok = false;
                }
            }
        }
    }

    if identity_seen && all_identity_zero {
        return Verdict::SameItem;
    }
    if same_block && higher_dims_ok && a1.seq != a2.seq {
        return Verdict::SameWavefront;
    }

    // --- 4. Definiteness for bug-finder postures. A *definite* race
    // needs a collision witness that (i) holds for every parameter
    // valuation — a δ scaled by a non-constant uniform monomial must be
    // zero in the witness — and (ii) names two DISTINCT work-items: a
    // witness forcing every local-id dimension equal describes one
    // work-item in program order, not a race. ---
    let free_onesided = vars.iter().any(|v| !v.matched && (v.lo != 0 || v.hi != 0));
    let d0_definite = d0lo == d0hi;
    let mut witness_sum = d0lo;
    let mut witness = known.clone();
    let mut robust = true;
    for v in vars.iter().filter(|v| v.matched) {
        let d = if v.lo == v.hi {
            v.lo
        } else if v.lo <= 0 && v.hi >= 0 {
            0
        } else {
            robust = false;
            break;
        };
        if d != 0 && (!v.umono.is_empty() || v.lane_atom.is_none()) {
            // A forced nonzero δ that scales with an unknown uniform
            // value (or hides in a compound monomial) has no
            // parameter-independent witness.
            robust = false;
            break;
        }
        if v.umono.is_empty() {
            witness_sum = witness_sum.saturating_add((v.c as i128).saturating_mul(d));
        }
        if let Some(a) = v.lane_atom {
            witness.insert(a, Some(d));
        }
    }
    let witness_hits = (-3..=3).contains(&witness_sum);
    let mut distinct_possible = false;
    for d in 0..3u8 {
        if let Some(lid) = find_atom(atoms, &AtomKind::LocalId(d)) {
            if resolve_lid_delta(lid, atoms, &witness, wave).0 != Some(0) {
                distinct_possible = true;
            }
        }
    }
    let definite = !opaque_addr
        && !free_onesided
        && robust
        && d0_definite
        && witness_hits
        && distinct_possible
        && !a1.opaque_guard
        && !a2.opaque_guard
        && identity_seen;
    Verdict::Overlap { definite }
}

/// δ bound for a `local_id.d` atom from the known-δ closure. Returns
/// `(exact δ if derivable, confined-to-aligned-block ≤ wavefront)`.
fn resolve_lid_delta(
    lid: AtomId,
    atoms: &Atoms,
    known: &HashMap<AtomId, Option<i128>>,
    wave: i128,
) -> (Option<i128>, bool) {
    if let Some(Some(d)) = known.get(&lid) {
        return (Some(*d), d.saturating_abs() < wave && *d == 0);
    }
    // Quotient/remainder reconstruction: δlid = 2^s·δQ + δR.
    let mut bound: Option<(u8, i128)> = None; // (shift, exact δQ)
    let mut congruence: Option<(u8, i128)> = None; // (shift, exact δR)
    for idx in 0..atoms.len() as u32 {
        let a = AtomId(idx);
        let info = atoms.info(a);
        match &info.kind {
            AtomKind::Quot { arg, shift } if lane_part_is(arg, lid, atoms) => {
                if let Some(Some(dq)) = known.get(&a) {
                    if *dq == 0 {
                        bound = Some(match bound {
                            Some((s, v)) if s <= *shift => (s, v),
                            _ => (*shift, 0),
                        });
                    }
                }
            }
            AtomKind::Rem { arg, shift } if lane_part_is(arg, lid, atoms) => {
                if let Some(Some(dr)) = known.get(&a) {
                    congruence = Some(match congruence {
                        Some((s, v)) if s >= *shift => (s, v),
                        _ => (*shift, *dr),
                    });
                }
            }
            _ => {}
        }
    }
    match (bound, congruence) {
        (Some((s, _)), Some((sr, dr))) => {
            // |δlid| ≤ 2^s − 1 and δlid ≡ dr (mod 2^sr).
            let b = (1i128 << s) - 1;
            if dr == 0 && (1i128 << sr) > b {
                return (Some(0), true);
            }
            (None, (1i128 << s) <= wave)
        }
        (Some((s, _)), None) => (None, (1i128 << s) <= wave),
        _ => (None, false),
    }
}

fn lane_part_is(p: &Poly, lid: AtomId, atoms: &Atoms) -> bool {
    let (lane, _) = p.split_lane(atoms);
    lane.terms.len() == 1
        && lane
            .terms
            .iter()
            .next()
            .map(|(m, &c)| c == 1 && m.len() == 1 && m[0] == lid)
            .unwrap_or(false)
}

fn find_atom(atoms: &Atoms, kind: &AtomKind) -> Option<AtomId> {
    (0..atoms.len() as u32)
        .map(AtomId)
        .find(|&a| &atoms.info(a).kind == kind)
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn mono_intersect(a: &Monomial, b: &Monomial) -> Monomial {
    let mut out = Vec::new();
    let mut bb = b.clone();
    for &x in a {
        if let Some(pos) = bb.iter().position(|&y| y == x) {
            bb.remove(pos);
            out.push(x);
        }
    }
    out
}

/// Divides every coefficient of `p` by `g` and every monomial by the
/// common factor `common`; `None` if not exactly divisible.
fn divide_poly(p: &Poly, g: i128, common: &Monomial) -> Option<Poly> {
    let g64 = i64::try_from(g).ok()?;
    if g64 == 0 {
        return None;
    }
    let mut out = Poly::constant(0);
    if p.k != 0 {
        if !common.is_empty() || p.k % g64 != 0 {
            return None;
        }
        out.k = p.k / g64;
    }
    for (m, &c) in &p.terms {
        if c % g64 != 0 {
            return None;
        }
        let stripped = strip_factor(m, common)?;
        out.terms.insert(stripped, c / g64);
    }
    Some(out)
}

fn strip_factor(m: &Monomial, f: &Monomial) -> Option<Monomial> {
    let mut rest = m.clone();
    for &x in f {
        let pos = rest.iter().position(|&y| y == x)?;
        rest.remove(pos);
    }
    Some(rest)
}

/// Checks every pair in one interval; returns race diagnostics.
pub(super) fn check_interval(
    interval: &Interval,
    atoms: &Atoms,
    asm: &LintAssumptions,
) -> Vec<Diagnostic> {
    // A single-work-item group cannot race with itself.
    if let [Some(a), Some(b), Some(c)] = asm.local_size {
        if a as u64 * b as u64 * c as u64 <= 1 {
            return Vec::new();
        }
    }
    let mut out = Vec::new();
    for i in 0..interval.len() {
        for j in i..interval.len() {
            let (a1, a2) = (&interval[i], &interval[j]);
            if a1.space != a2.space {
                continue;
            }
            if a1.kind == AccessKind::Read && a2.kind == AccessKind::Read {
                continue;
            }
            if a1.kind == AccessKind::Atomic && a2.kind == AccessKind::Atomic {
                continue;
            }
            if i == j && a1.kind == AccessKind::Atomic {
                continue;
            }
            match check_pair(a1, a2, atoms, asm) {
                Verdict::Disjoint | Verdict::SameItem | Verdict::SameWavefront => {}
                Verdict::Overlap { definite } => {
                    let (kind, emit) = match a1.space {
                        MemSpace::Local => (LintKind::LocalRace, true),
                        MemSpace::Global => (LintKind::GlobalRace, definite),
                    };
                    if emit {
                        let sev = if definite { "definite" } else { "possible" };
                        out.push(Diagnostic {
                            kind,
                            message: format!(
                                "{sev} {} data race between distinct work-items in one \
                                 barrier interval: [{}] and [{}]",
                                a1.space, a1.desc, a2.desc
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

//! Symbolic address expressions for the lint passes.
//!
//! Values are abstracted as multivariate polynomials over *atoms*: opaque
//! value units such as `local_id.0`, a `ReadParam` result, the quotient of
//! another expression by a constant power of two, or a fresh unknown. The
//! domain is exact for the address arithmetic GPU kernels actually use —
//! `base + 4*id`, linearized multi-dim ids, ping-pong region constants,
//! `id >> 1` / `id & 1` pair decompositions — and degrades to fresh opaque
//! atoms for anything else (loads, float math, data-dependent bit tricks).
//!
//! Two facts drive the race prover:
//!
//! * every atom carries a numeric interval (`[lo, hi]` in `i128`), seeded
//!   from launch assumptions and loop range pre-analysis, so polynomial
//!   ranges can be evaluated numerically;
//! * lane-dependent atoms (those that can differ between two work-items of
//!   one group) are distinguished from group-uniform ones, so a
//!   polynomial splits into a lane part and a uniform part.
//!
//! Arithmetic is ideal-integer (no wrapping): the prover only draws
//! conclusions about byte addresses, which fit comfortably in `i128`. A
//! kernel that relies on address wraparound is outside the domain.

use crate::inst::{Builtin, Dim};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Interned atom identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomId(pub u32);

/// What an atom stands for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AtomKind {
    /// `local_id.d` — the canonical per-lane variables.
    LocalId(u8),
    /// `group_id.d` — uniform within a work-group.
    GroupId(u8),
    /// `local_size.d` (only when not pinned by assumptions).
    LocalSize(u8),
    /// `num_groups.d`.
    NumGroups(u8),
    /// The value read from parameter `index` (buffer base or scalar).
    Param(usize),
    /// `floor(arg / 2^shift)` of an interned argument polynomial.
    Quot {
        /// Interned canonical form of the argument.
        arg: Box<Poly>,
        /// The power-of-two shift.
        shift: u8,
    },
    /// `arg mod 2^shift`.
    Rem {
        /// Interned canonical form of the argument.
        arg: Box<Poly>,
        /// The power-of-two shift.
        shift: u8,
    },
    /// Anything the domain cannot track; `id` makes each distinct.
    Opaque {
        /// Fresh identity.
        id: u32,
    },
}

/// Side data for one atom.
#[derive(Debug, Clone)]
pub struct AtomInfo {
    /// What the atom stands for.
    pub kind: AtomKind,
    /// `true` if the value may differ between work-items of one group.
    pub lane: bool,
    /// Numeric range (inclusive).
    pub lo: i128,
    /// Numeric range (inclusive).
    pub hi: i128,
}

/// Atom interning table.
#[derive(Debug, Default)]
pub struct Atoms {
    infos: Vec<AtomInfo>,
    by_kind: HashMap<AtomKind, AtomId>,
    next_opaque: u32,
}

/// "Unbounded" sentinel magnitude (beyond any 32-bit address math).
pub const BIG: i128 = 1 << 40;

impl Atoms {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a (non-opaque) atom kind; range is set on first creation.
    pub fn intern(&mut self, kind: AtomKind, lane: bool, lo: i128, hi: i128) -> AtomId {
        if let Some(&id) = self.by_kind.get(&kind) {
            return id;
        }
        let id = AtomId(self.infos.len() as u32);
        self.infos.push(AtomInfo {
            kind: kind.clone(),
            lane,
            lo,
            hi,
        });
        self.by_kind.insert(kind, id);
        id
    }

    /// Creates a fresh opaque atom.
    pub fn fresh_opaque(&mut self, lane: bool, lo: i128, hi: i128) -> AtomId {
        let kind = AtomKind::Opaque {
            id: self.next_opaque,
        };
        self.next_opaque += 1;
        let id = AtomId(self.infos.len() as u32);
        self.infos.push(AtomInfo { kind, lane, lo, hi });
        id
    }

    /// Looks up an atom.
    pub fn info(&self, id: AtomId) -> &AtomInfo {
        &self.infos[id.0 as usize]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// `true` if no atoms have been interned.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Narrows the stored numeric range of `id`.
    pub fn narrow(&mut self, id: AtomId, lo: i128, hi: i128) {
        let a = &mut self.infos[id.0 as usize];
        a.lo = a.lo.max(lo);
        a.hi = a.hi.min(hi);
    }
}

/// A product of atoms (sorted, with multiplicity). Empty = the unit.
pub type Monomial = Vec<AtomId>;

/// Maximum monomial degree before collapsing to opaque.
const MAX_DEGREE: usize = 4;
/// Maximum number of terms before collapsing to opaque.
const MAX_TERMS: usize = 24;

/// A multivariate polynomial over atoms with integer coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    /// Monomial → coefficient (no zero coefficients stored).
    pub terms: BTreeMap<Monomial, i64>,
    /// Constant term.
    pub k: i64,
}

impl Poly {
    /// The constant polynomial.
    pub fn constant(k: i64) -> Self {
        Poly {
            terms: BTreeMap::new(),
            k,
        }
    }

    /// A single atom.
    pub fn atom(a: AtomId) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(vec![a], 1);
        Poly { terms, k: 0 }
    }

    /// `Some(k)` if the polynomial is a constant.
    pub fn as_const(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.k)
        } else {
            None
        }
    }

    /// `Some(atom)` if the polynomial is exactly one atom (coefficient 1,
    /// no constant).
    pub fn as_single_atom(&self) -> Option<AtomId> {
        if self.k != 0 || self.terms.len() != 1 {
            return None;
        }
        let (m, &c) = self.terms.iter().next().unwrap();
        if c == 1 && m.len() == 1 {
            Some(m[0])
        } else {
            None
        }
    }

    /// True if too large to keep exact.
    fn oversized(&self) -> bool {
        self.terms.len() > MAX_TERMS || self.terms.keys().any(|m| m.len() > MAX_DEGREE)
    }

    /// Adds two polynomials.
    pub fn add(&self, o: &Poly) -> Poly {
        let mut r = self.clone();
        r.k = r.k.saturating_add(o.k);
        for (m, c) in &o.terms {
            let e = r.terms.entry(m.clone()).or_insert(0);
            *e = e.saturating_add(*c);
            if *e == 0 {
                r.terms.remove(m);
            }
        }
        r
    }

    /// Negates.
    pub fn neg(&self) -> Poly {
        let mut r = self.clone();
        r.k = -r.k;
        for c in r.terms.values_mut() {
            *c = -*c;
        }
        r
    }

    /// Subtracts.
    pub fn sub(&self, o: &Poly) -> Poly {
        self.add(&o.neg())
    }

    /// Multiplies by an integer.
    pub fn scale(&self, s: i64) -> Poly {
        if s == 0 {
            return Poly::constant(0);
        }
        let mut r = self.clone();
        r.k = r.k.saturating_mul(s);
        for c in r.terms.values_mut() {
            *c = c.saturating_mul(s);
        }
        r
    }

    /// Multiplies two polynomials; `None` if the result exceeds the degree
    /// or size caps (caller falls back to an opaque atom).
    pub fn mul(&self, o: &Poly) -> Option<Poly> {
        let mut r = Poly::constant(self.k.saturating_mul(o.k));
        let acc = |m: &Monomial, c: i64, r: &mut Poly| {
            let e = r.terms.entry(m.clone()).or_insert(0);
            *e = e.saturating_add(c);
            if *e == 0 {
                r.terms.remove(m);
            }
        };
        for (m, c) in &self.terms {
            if o.k != 0 {
                acc(m, c.saturating_mul(o.k), &mut r);
            }
        }
        for (m, c) in &o.terms {
            if self.k != 0 {
                acc(m, c.saturating_mul(self.k), &mut r);
            }
        }
        for (ma, ca) in &self.terms {
            for (mb, cb) in &o.terms {
                let mut m = ma.clone();
                m.extend_from_slice(mb);
                m.sort_unstable();
                acc(&m, ca.saturating_mul(*cb), &mut r);
            }
        }
        if r.oversized() {
            None
        } else {
            Some(r)
        }
    }

    /// True if any monomial contains a lane atom.
    pub fn has_lane(&self, atoms: &Atoms) -> bool {
        self.terms
            .keys()
            .any(|m| m.iter().any(|&a| atoms.info(a).lane))
    }

    /// Splits into (lane-dependent part, uniform part incl. constant).
    pub fn split_lane(&self, atoms: &Atoms) -> (Poly, Poly) {
        let mut lane = Poly::constant(0);
        let mut unif = Poly::constant(self.k);
        for (m, c) in &self.terms {
            let target = if m.iter().any(|&a| atoms.info(a).lane) {
                &mut lane
            } else {
                &mut unif
            };
            target.terms.insert(m.clone(), *c);
        }
        (lane, unif)
    }

    /// Numeric interval of the polynomial from atom ranges. Saturates at
    /// `±BIG²`-ish magnitudes; callers treat anything ≥ [`BIG`] as unknown.
    pub fn eval_range(&self, atoms: &Atoms) -> (i128, i128) {
        let mut lo = self.k as i128;
        let mut hi = self.k as i128;
        for (m, &c) in &self.terms {
            // Interval product over the monomial's atoms.
            let (mut mlo, mut mhi) = (1i128, 1i128);
            for &a in m {
                let i = atoms.info(a);
                let cands = [
                    mlo.saturating_mul(i.lo),
                    mlo.saturating_mul(i.hi),
                    mhi.saturating_mul(i.lo),
                    mhi.saturating_mul(i.hi),
                ];
                mlo = *cands.iter().min().unwrap();
                mhi = *cands.iter().max().unwrap();
            }
            let c = c as i128;
            let cands = [mlo.saturating_mul(c), mhi.saturating_mul(c)];
            lo = lo.saturating_add(*cands.iter().min().unwrap());
            hi = hi.saturating_add(*cands.iter().max().unwrap());
        }
        (lo, hi)
    }

    /// Renders for diagnostics.
    pub fn render(&self, atoms: &Atoms) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (m, c) in &self.terms {
            if !s.is_empty() {
                s.push_str(" + ");
            }
            if *c != 1 || m.is_empty() {
                let _ = write!(s, "{c}");
                if !m.is_empty() {
                    s.push('*');
                }
            }
            let names: Vec<String> = m.iter().map(|&a| render_atom(atoms, a)).collect();
            s.push_str(&names.join("*"));
        }
        if self.k != 0 || s.is_empty() {
            if !s.is_empty() {
                let _ = write!(s, " + {}", self.k);
            } else {
                let _ = write!(s, "{}", self.k);
            }
        }
        s
    }
}

fn render_atom(atoms: &Atoms, a: AtomId) -> String {
    match &atoms.info(a).kind {
        AtomKind::LocalId(d) => format!("lid{d}"),
        AtomKind::GroupId(d) => format!("grp{d}"),
        AtomKind::LocalSize(d) => format!("ls{d}"),
        AtomKind::NumGroups(d) => format!("ng{d}"),
        AtomKind::Param(i) => format!("param{i}"),
        AtomKind::Quot { arg, shift } => format!("({} >> {shift})", arg.render(atoms)),
        AtomKind::Rem { arg, shift } => {
            format!("({} & {})", arg.render(atoms), (1u64 << shift) - 1)
        }
        AtomKind::Opaque { id } => format!("unk{id}"),
    }
}

/// Launch-shape assumptions the linter may exploit (all optional).
///
/// The suite's CLI passes each benchmark's actual launch geometry, which
/// makes most bounds numeric; without assumptions the analysis falls back
/// to symbolic size atoms and proves less.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintAssumptions {
    /// Work-group size per dimension, if known.
    pub local_size: [Option<u32>; 3],
    /// Wavefront width (defaults to 64 when zero).
    pub wavefront: u32,
}

impl LintAssumptions {
    /// Assume a 1-D launch with the given work-group size.
    pub fn one_dim(local: u32) -> Self {
        LintAssumptions {
            local_size: [Some(local), Some(1), Some(1)],
            wavefront: 64,
        }
    }

    /// Effective wavefront width.
    pub fn wave(&self) -> u32 {
        if self.wavefront == 0 {
            64
        } else {
            self.wavefront
        }
    }
}

/// Builds the polynomial for a builtin read.
pub fn builtin_poly(atoms: &mut Atoms, b: Builtin, asm: &LintAssumptions) -> Poly {
    match b {
        Builtin::LocalId(Dim(d)) => {
            let hi = match asm.local_size[d as usize] {
                Some(n) => n.saturating_sub(1) as i128,
                None => BIG,
            };
            if hi == 0 {
                // Degenerate dimension: the id is always zero.
                return Poly::constant(0);
            }
            Poly::atom(atoms.intern(AtomKind::LocalId(d), true, 0, hi))
        }
        Builtin::LocalSize(Dim(d)) => match asm.local_size[d as usize] {
            Some(n) => Poly::constant(n as i64),
            None => Poly::atom(atoms.intern(AtomKind::LocalSize(d), false, 1, BIG)),
        },
        Builtin::GroupId(Dim(d)) => Poly::atom(atoms.intern(AtomKind::GroupId(d), false, 0, BIG)),
        Builtin::NumGroups(Dim(d)) => {
            Poly::atom(atoms.intern(AtomKind::NumGroups(d), false, 1, BIG))
        }
        Builtin::GlobalId(Dim(d)) => {
            // gid_d = grp_d * ls_d + lid_d: keeps the group/lane split
            // visible to the prover.
            let grp = builtin_poly(atoms, Builtin::GroupId(Dim(d)), asm);
            let ls = builtin_poly(atoms, Builtin::LocalSize(Dim(d)), asm);
            let lid = builtin_poly(atoms, Builtin::LocalId(Dim(d)), asm);
            match grp.mul(&ls) {
                Some(b) => b.add(&lid),
                None => lid,
            }
        }
        Builtin::GlobalSize(Dim(d)) => {
            let ng = builtin_poly(atoms, Builtin::NumGroups(Dim(d)), asm);
            let ls = builtin_poly(atoms, Builtin::LocalSize(Dim(d)), asm);
            ng.mul(&ls)
                .unwrap_or_else(|| Poly::atom(atoms.fresh_opaque(false, 1, BIG)))
        }
    }
}

/// `floor(p / 2^shift)` as a polynomial: exact for constants and for
/// polynomials whose every coefficient (and constant) is divisible by the
/// power; otherwise an interned `Quot` atom.
pub fn shr_poly(atoms: &mut Atoms, p: &Poly, shift: u8) -> Poly {
    let d = 1i64 << shift;
    if let Some(k) = p.as_const() {
        if k >= 0 {
            return Poly::constant(k >> shift);
        }
    }
    // Division distributes only when every coefficient (and the constant)
    // is a nonnegative multiple of the divisor: each term's quotient is
    // then exact and floor of the sum equals the sum of floors.
    if p.k >= 0 && p.k % d == 0 && p.terms.values().all(|&c| c >= 0 && c % d == 0) {
        let mut r = p.clone();
        r.k /= d;
        for c in r.terms.values_mut() {
            *c /= d;
        }
        return r;
    }
    let (plo, phi) = p.eval_range(atoms);
    let lo = if plo <= 0 { 0 } else { plo >> shift };
    let hi = if phi >= BIG { BIG } else { phi >> shift };
    let lane = p.has_lane(atoms);
    if lo == hi {
        return Poly::constant(lo as i64);
    }
    Poly::atom(atoms.intern(
        AtomKind::Quot {
            arg: Box::new(p.clone()),
            shift,
        },
        lane,
        lo,
        hi,
    ))
}

/// `p mod 2^shift` (i.e. `p & (2^shift - 1)`).
pub fn rem_poly(atoms: &mut Atoms, p: &Poly, shift: u8) -> Poly {
    let d = 1i64 << shift;
    if let Some(k) = p.as_const() {
        if k >= 0 {
            return Poly::constant(k & (d - 1));
        }
    }
    let (plo, phi) = p.eval_range(atoms);
    if plo >= 0 && phi < d as i128 {
        // Already smaller than the modulus.
        return p.clone();
    }
    let lane = p.has_lane(atoms);
    let hi = (d - 1) as i128;
    Poly::atom(atoms.intern(
        AtomKind::Rem {
            arg: Box::new(p.clone()),
            shift,
        },
        lane,
        0,
        hi,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let mut at = Atoms::new();
        let asm = LintAssumptions::one_dim(64);
        let lid = builtin_poly(&mut at, Builtin::LocalId(Dim(0)), &asm);
        let four = Poly::constant(4);
        let addr = lid.mul(&four).unwrap().add(&Poly::constant(8));
        let (lo, hi) = addr.eval_range(&at);
        assert_eq!((lo, hi), (8, 8 + 63 * 4));
        assert!(addr.has_lane(&at));
    }

    #[test]
    fn quot_rem_pair_shares_arg() {
        let mut at = Atoms::new();
        let asm = LintAssumptions::one_dim(64);
        let lid = builtin_poly(&mut at, Builtin::LocalId(Dim(0)), &asm);
        let q1 = shr_poly(&mut at, &lid, 1);
        let q2 = shr_poly(&mut at, &lid, 1);
        assert_eq!(q1, q2, "quotient atoms are interned");
        let r = rem_poly(&mut at, &lid, 1);
        let (rlo, rhi) = r.eval_range(&at);
        assert_eq!((rlo, rhi), (0, 1));
        let (qlo, qhi) = q1.eval_range(&at);
        assert_eq!((qlo, qhi), (0, 31));
    }

    #[test]
    fn degenerate_dims_collapse_to_zero() {
        let mut at = Atoms::new();
        let asm = LintAssumptions::one_dim(64);
        let lid1 = builtin_poly(&mut at, Builtin::LocalId(Dim(1)), &asm);
        assert_eq!(lid1.as_const(), Some(0));
    }

    #[test]
    fn gid_splits_group_and_lane() {
        let mut at = Atoms::new();
        let asm = LintAssumptions::one_dim(128);
        let gid = builtin_poly(&mut at, Builtin::GlobalId(Dim(0)), &asm);
        let (lane, unif) = gid.split_lane(&at);
        assert!(!lane.terms.is_empty());
        assert!(!unif.terms.is_empty());
    }

    #[test]
    fn shr_distributes_over_even_polys() {
        let mut at = Atoms::new();
        let asm = LintAssumptions::one_dim(64);
        let lid = builtin_poly(&mut at, Builtin::LocalId(Dim(0)), &asm);
        let even = lid.scale(8).add(&Poly::constant(16));
        let half = shr_poly(&mut at, &even, 1);
        assert_eq!(half, lid.scale(4).add(&Poly::constant(8)));
    }
}

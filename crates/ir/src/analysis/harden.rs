//! Coverage-guided selective-hardening planner.
//!
//! The paper's transforms are all-or-nothing: every instruction is
//! duplicated even when the coverage analysis proves a value's residency
//! windows are already Masked or Detected. This module inverts
//! [`crate::analysis::coverage`] from a classifier into a planner: starting
//! from every *Vulnerable* user VGPR residency window, it walks def-use
//! chains backward — through register defs, through LDS via the lint
//! passes' affine address machinery, and through control dependences from
//! the uniformity analysis — to the instruction set whose duplication plus
//! an exit-site comparison would convert the window to Detected.
//!
//! The unit of protection is the **sphere-of-replication exit site**: a
//! global store or atomic, identified by its depth-first pre-order ordinal
//! (the same numbering the coverage flattener and the transform's rewriter
//! use). Protecting an exit means the transform publishes and compares the
//! replicas' address/value operands there; a Vulnerable window converts to
//! Detected exactly when *all* exits it reaches are protected and it feeds
//! no control decision.
//!
//! Each candidate (one per distinct reachable-exit set) is weighted by
//! liveness-weighted vulnerability reduction (benefit) over a duplicated
//! dynamic instruction estimate (cost: loop-depth-scaled slice size plus a
//! per-exit compare charge). Selection is greedy by benefit/cost ratio
//! with marginal-cost accounting: the plan is the longest prefix of the
//! ratio-ordered candidates whose cumulative marginal cost fits the
//! protection budget. Because the order is fixed and selection is a
//! prefix, plans are deterministic and monotone in the budget: raising the
//! budget only ever adds exits, never removes them.

use crate::analysis::coverage::{coverage, CoverageSpec, Protection, Replication, Residency};
use crate::analysis::lint::expr::{
    builtin_poly, rem_poly, shr_poly, AtomKind, Atoms, LintAssumptions, Poly, BIG,
};
use crate::analysis::uniformity::uniform_regs;
use crate::inst::{BinOp, Block, Inst, MemSpace, Reg};
use crate::kernel::Kernel;
use crate::types::Ty;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Charge (in duplicated-instruction units) for one publish+compare
/// sequence at an exit site, before loop-frequency scaling.
const COMPARE_COST: u64 = 10;
/// Assumed iterations per loop-nesting level in the frequency model.
const LOOP_FREQ: u64 = 4;
/// Loop-depth cap for the frequency model (4^5 per extra level saturates).
const MAX_FREQ_DEPTH: u32 = 5;

/// Configuration for [`harden`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardenConfig {
    /// Protection budget in percent (0..=100) of the full-hardening cost.
    pub budget: u8,
}

impl HardenConfig {
    /// A config with the given budget, clamped to 100.
    pub fn with_budget(budget: u8) -> Self {
        HardenConfig {
            budget: budget.min(100),
        }
    }
}

impl Default for HardenConfig {
    fn default() -> Self {
        HardenConfig { budget: 100 }
    }
}

/// One sphere-of-replication exit site of the original kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitSite {
    /// Position among exits in depth-first pre-order (the transform
    /// counts exits in the same order, so ordinals line up).
    pub ordinal: usize,
    /// Linear pre-order instruction index (1-based, the numbering
    /// [`crate::analysis::pressure::live_spans`] uses).
    pub idx: usize,
    /// `true` for a global store, `false` for a global atomic.
    pub is_store: bool,
    /// Loop-nesting depth of the site.
    pub loop_depth: u32,
}

/// A convertible Vulnerable VGPR residency window: the value reaches only
/// exit sites (no control decisions), so protecting those exits converts
/// it to Detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanWindow {
    /// The register whose VGPR window this is.
    pub reg: Reg,
    /// Liveness weight of the window.
    pub weight: u64,
    /// Exit ordinals the value can reach.
    pub exits: BTreeSet<usize>,
}

/// One candidate slice: the windows sharing a reachable-exit set, the
/// backward instruction slice feeding those exits, and its cost accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// Registers of the windows this candidate converts (sorted).
    pub regs: Vec<Reg>,
    /// Benefit: summed liveness weight of the converted windows.
    pub weight: u64,
    /// Exit ordinals that must be protected.
    pub exits: BTreeSet<usize>,
    /// Linear indices of the backward slice (cost basis: the instructions
    /// whose duplication feeds the protected exits).
    pub insts: BTreeSet<usize>,
    /// Standalone duplicated dynamic-instruction estimate.
    pub cost: u64,
    /// Cost beyond the candidates ordered before this one.
    pub marginal_cost: u64,
    /// `true` if the budget admitted this candidate.
    pub selected: bool,
}

/// The output of [`harden`]: the budgeted exit-protection plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardenPlan {
    /// The budget the plan was selected under (percent).
    pub budget: u8,
    /// Every exit site of the kernel, in pre-order.
    pub exits: Vec<ExitSite>,
    /// All candidates in greedy (ratio) order, selected or not.
    pub slices: Vec<Slice>,
    /// Ordinals of the exits the plan protects.
    pub selected_exits: BTreeSet<usize>,
    /// Marginal-cost sum over all candidates (the 100%-budget cost).
    pub total_cost: u64,
    /// Marginal-cost sum over the selected prefix.
    pub selected_cost: u64,
    /// The convertible Vulnerable VGPR windows the candidates came from.
    pub windows: Vec<PlanWindow>,
    /// Summed weight of Vulnerable user VGPR windows before hardening.
    pub baseline_vulnerable_weight: u64,
    /// Summed weight of all user VGPR windows.
    pub baseline_total_weight: u64,
}

impl HardenPlan {
    /// `true` if the plan protects nothing (budget 0, or no exits).
    pub fn is_empty(&self) -> bool {
        self.selected_exits.is_empty()
    }

    /// Number of convertible windows whose every reachable exit is
    /// protected — the windows the transform's coverage will reclassify
    /// as Detected.
    pub fn predicted_detected(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| w.exits.is_subset(&self.selected_exits))
            .count()
    }

    /// Predicted Vulnerable VGPR weight after applying the plan.
    pub fn predicted_vulnerable_weight(&self) -> u64 {
        let converted: u64 = self
            .windows
            .iter()
            .filter(|w| w.exits.is_subset(&self.selected_exits))
            .map(|w| w.weight)
            .sum();
        self.baseline_vulnerable_weight.saturating_sub(converted)
    }

    /// Predicted liveness-weighted VGPR vulnerability fraction.
    pub fn predicted_vulnerable_fraction(&self) -> f64 {
        if self.baseline_total_weight == 0 {
            0.0
        } else {
            self.predicted_vulnerable_weight() as f64 / self.baseline_total_weight as f64
        }
    }

    /// One-line deterministic summary for experiment output.
    pub fn summary(&self) -> String {
        format!(
            "budget {}%: exits {}/{}, cost {}/{}, windows {}/{} convertible",
            self.budget,
            self.selected_exits.len(),
            self.exits.len(),
            self.selected_cost,
            self.total_cost,
            self.predicted_detected(),
            self.windows.len(),
        )
    }
}

/// Per-node kind facts the planner needs beyond `dst`/`srcs`.
#[derive(Debug, Clone, Copy)]
enum HKind {
    /// Anything without memory/control significance for the planner.
    Plain,
    /// `Load` from LDS.
    LocalLoad { dst: Reg },
    /// `Store`/`Atomic` into LDS.
    LocalWrite { addr: Reg, value: Reg },
    /// Global store or atomic: a sphere-of-replication exit.
    GlobalExit,
    /// `If`/`While` head: the condition register is a control sink.
    Cond(Reg),
}

struct HNode {
    /// Linear pre-order index (matches coverage/pressure numbering).
    idx: usize,
    dst: Option<Reg>,
    srcs: Vec<Reg>,
    /// Loop-nesting depth.
    depth: u32,
    /// Enclosing structured-control condition registers.
    conds: Vec<Reg>,
    /// Exit ordinal if this node is a [`HKind::GlobalExit`].
    exit: Option<usize>,
    kind: HKind,
}

#[derive(Default)]
struct Walker {
    idx: usize,
    nodes: Vec<HNode>,
    exits: Vec<ExitSite>,
    builtin_dsts: Vec<Reg>,
}

impl Walker {
    fn walk(&mut self, block: &Block, depth: u32, conds: &mut Vec<Reg>) {
        for inst in block.iter() {
            self.idx += 1;
            let here = self.idx;
            let mut srcs = Vec::new();
            inst.srcs(&mut srcs);
            let kind = match inst {
                Inst::Load {
                    dst,
                    space: MemSpace::Local,
                    ..
                } => HKind::LocalLoad { dst: *dst },
                Inst::Store {
                    space: MemSpace::Local,
                    addr,
                    value,
                } => HKind::LocalWrite {
                    addr: *addr,
                    value: *value,
                },
                Inst::Atomic {
                    space: MemSpace::Local,
                    addr,
                    value,
                    ..
                } => HKind::LocalWrite {
                    addr: *addr,
                    value: *value,
                },
                Inst::Store {
                    space: MemSpace::Global,
                    ..
                }
                | Inst::Atomic {
                    space: MemSpace::Global,
                    ..
                } => HKind::GlobalExit,
                Inst::If { cond, .. } => HKind::Cond(*cond),
                Inst::While { cond_reg, .. } => HKind::Cond(*cond_reg),
                Inst::ReadBuiltin { dst, .. } => {
                    self.builtin_dsts.push(*dst);
                    HKind::Plain
                }
                _ => HKind::Plain,
            };
            let exit = if matches!(kind, HKind::GlobalExit) {
                let ordinal = self.exits.len();
                self.exits.push(ExitSite {
                    ordinal,
                    idx: here,
                    is_store: matches!(inst, Inst::Store { .. }),
                    loop_depth: depth,
                });
                Some(ordinal)
            } else {
                None
            };
            self.nodes.push(HNode {
                idx: here,
                dst: inst.dst(),
                srcs,
                depth,
                conds: conds.clone(),
                exit,
                kind,
            });
            match inst {
                Inst::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    conds.push(*cond);
                    self.walk(then_blk, depth, conds);
                    self.walk(else_blk, depth, conds);
                    conds.pop();
                }
                Inst::While {
                    cond,
                    cond_reg,
                    body,
                } => {
                    conds.push(*cond_reg);
                    self.walk(cond, depth + 1, conds);
                    self.walk(body, depth + 1, conds);
                    conds.pop();
                }
                _ => {}
            }
        }
    }
}

fn count_defs(block: &Block, counts: &mut HashMap<Reg, u32>) {
    for inst in block.iter() {
        if let Some(d) = inst.dst() {
            *counts.entry(d).or_insert(0) += 1;
        }
        match inst {
            Inst::If {
                then_blk, else_blk, ..
            } => {
                count_defs(then_blk, counts);
                count_defs(else_blk, counts);
            }
            Inst::While { cond, body, .. } => {
                count_defs(cond, counts);
                count_defs(body, counts);
            }
            _ => {}
        }
    }
}

/// Affine value evaluator built from the lint passes' polynomial domain.
///
/// Single-assignment registers get exact polynomials for the address
/// arithmetic the domain tracks; multi-def registers (loop-carried values)
/// and untrackable ops become *lane-varying* fresh opaque atoms, so two
/// occurrences never cancel in a difference — exactly the conservatism the
/// may-overlap test needs (an opaque that changes between a store and a
/// load must not be treated as equal on both sides).
struct Affine {
    atoms: Atoms,
    asm: LintAssumptions,
    poly: HashMap<Reg, Poly>,
    multi: HashSet<Reg>,
}

impl Affine {
    fn new(kernel: &Kernel) -> Self {
        let mut counts = HashMap::new();
        count_defs(&kernel.body, &mut counts);
        let multi = counts
            .into_iter()
            .filter(|&(_, c)| c > 1)
            .map(|(r, _)| r)
            .collect();
        let mut a = Affine {
            atoms: Atoms::new(),
            asm: LintAssumptions::default(),
            poly: HashMap::new(),
            multi,
        };
        a.eval_block(&kernel.body);
        a
    }

    fn opaque(&mut self) -> Poly {
        Poly::atom(self.atoms.fresh_opaque(true, -BIG, BIG))
    }

    fn get(&mut self, r: Reg) -> Poly {
        if let Some(p) = self.poly.get(&r) {
            return p.clone();
        }
        let p = self.opaque();
        self.poly.insert(r, p.clone());
        p
    }

    fn define(&mut self, dst: Reg, p: Poly) {
        if self.multi.contains(&dst) {
            if !self.poly.contains_key(&dst) {
                let o = self.opaque();
                self.poly.insert(dst, o);
            }
        } else {
            self.poly.insert(dst, p);
        }
    }

    fn eval_block(&mut self, block: &Block) {
        for inst in block.iter() {
            match inst {
                Inst::Const { dst, ty, bits } => {
                    let p = match ty {
                        Ty::F32 => self.opaque(),
                        Ty::I32 => Poly::constant((*bits as i32) as i64),
                        _ => Poly::constant(*bits as i64),
                    };
                    self.define(*dst, p);
                }
                Inst::Mov { dst, src } => {
                    let p = self.get(*src);
                    self.define(*dst, p);
                }
                Inst::ReadParam { dst, index } => {
                    let p = Poly::atom(self.atoms.intern(AtomKind::Param(*index), false, 0, BIG));
                    self.define(*dst, p);
                }
                Inst::ReadBuiltin { dst, builtin } => {
                    let p = builtin_poly(&mut self.atoms, *builtin, &self.asm);
                    self.define(*dst, p);
                }
                Inst::Binary { dst, op, a, b, .. } => {
                    let pa = self.get(*a);
                    let pb = self.get(*b);
                    let p = match op {
                        BinOp::Add => pa.add(&pb),
                        BinOp::Sub => pa.sub(&pb),
                        BinOp::Mul => pa.mul(&pb).unwrap_or_else(|| self.opaque()),
                        BinOp::Shl => match pb.as_const() {
                            Some(k) if (0..=31).contains(&k) => pa.scale(1i64 << k),
                            _ => self.opaque(),
                        },
                        BinOp::Shr => match pb.as_const() {
                            Some(k) if (0..=31).contains(&k) => {
                                shr_poly(&mut self.atoms, &pa, k as u8)
                            }
                            _ => self.opaque(),
                        },
                        BinOp::And => match pb.as_const() {
                            Some(m) if m >= 0 && (m + 1).count_ones() == 1 => {
                                rem_poly(&mut self.atoms, &pa, (m + 1).trailing_zeros() as u8)
                            }
                            _ => self.opaque(),
                        },
                        _ => self.opaque(),
                    };
                    self.define(*dst, p);
                }
                Inst::If {
                    then_blk, else_blk, ..
                } => {
                    self.eval_block(then_blk);
                    self.eval_block(else_blk);
                }
                Inst::While { cond, body, .. } => {
                    self.eval_block(cond);
                    self.eval_block(body);
                }
                other => {
                    if let Some(d) = other.dst() {
                        let p = self.opaque();
                        self.define(d, p);
                    }
                }
            }
        }
    }
}

/// May the 4-byte word written at `a` be observed by a 4-byte read at `b`?
///
/// The two accesses are executed by *independent* dynamic instances, so
/// lane-varying atoms range freely on each side, while group-uniform atoms
/// (params, group ids, sizes) are genuinely shared and cancel in the
/// difference. Overlap holds iff the interval of
/// `uniform(a) - uniform(b) + lane(a) - lane(b)` intersects `[-3, 3]`.
fn may_overlap(a: &Poly, b: &Poly, atoms: &Atoms) -> bool {
    const SLACK: i128 = 3;
    let (al, au) = a.split_lane(atoms);
    let (bl, bu) = b.split_lane(atoms);
    let (ulo, uhi) = au.sub(&bu).eval_range(atoms);
    let (allo, alhi) = al.eval_range(atoms);
    let (bllo, blhi) = bl.eval_range(atoms);
    let lo = ulo.saturating_add(allo).saturating_sub(blhi);
    let hi = uhi.saturating_add(alhi).saturating_sub(bllo);
    lo <= SLACK && hi >= -SLACK
}

/// Reachable-sink facts for one register (the blessed-spec mirror of the
/// coverage engine's backward pass, extended with LDS flow links).
#[derive(Debug, Clone, Default)]
struct Obs {
    exits: BTreeSet<usize>,
    control: bool,
}

fn absorb(obs: &mut HashMap<Reg, Obs>, dst: Reg, from: &Obs) -> bool {
    let e = obs.entry(dst).or_default();
    let mut changed = false;
    for &x in &from.exits {
        changed |= e.exits.insert(x);
    }
    if from.control && !e.control {
        e.control = true;
        changed = true;
    }
    changed
}

fn freq(depth: u32) -> u64 {
    LOOP_FREQ.pow(depth.min(MAX_FREQ_DEPTH))
}

/// Computes the budgeted hardening plan for `kernel`.
///
/// The plan is deterministic for a fixed kernel and budget, and monotone
/// in the budget: `harden(k, b1).selected_exits ⊆ harden(k, b2).selected_exits`
/// whenever `b1 <= b2`.
pub fn harden(kernel: &Kernel, cfg: &HardenConfig) -> HardenPlan {
    let budget = cfg.budget.min(100);
    let mut walker = Walker::default();
    let mut conds = Vec::new();
    walker.walk(&kernel.body, 0, &mut conds);
    let Walker {
        nodes,
        exits,
        builtin_dsts,
        ..
    } = walker;

    // Link LDS loads to the stores whose word they may observe, via the
    // affine address domain. Untrackable addresses degrade to lane-varying
    // opaques, which conservatively overlap everything.
    let mut affine = Affine::new(kernel);
    let loads: Vec<usize> = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.kind, HKind::LocalLoad { .. }))
        .map(|(i, _)| i)
        .collect();
    let writes: Vec<usize> = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.kind, HKind::LocalWrite { .. }))
        .map(|(i, _)| i)
        .collect();
    // load node position -> writer node positions that may feed it.
    let mut load_links: HashMap<usize, Vec<usize>> = HashMap::new();
    for &lp in &loads {
        let laddr = nodes[lp].srcs[0];
        let la = affine.get(laddr);
        for &wp in &writes {
            let HKind::LocalWrite { addr, .. } = nodes[wp].kind else {
                continue;
            };
            let wa = affine.get(addr);
            if may_overlap(&wa, &la, &affine.atoms) {
                load_links.entry(lp).or_default().push(wp);
            }
        }
    }

    // Backward reachable-sink fixpoint under the blessed assumption (IDs
    // remapped, every planned exit compared): which exits and control
    // decisions can each register's corruption reach?
    let mut obs: HashMap<Reg, Obs> = HashMap::new();
    for n in &nodes {
        match n.kind {
            HKind::GlobalExit => {
                let ord = n.exit.expect("exit ordinal");
                for &s in &n.srcs {
                    obs.entry(s).or_default().exits.insert(ord);
                }
            }
            HKind::Cond(c) => obs.entry(c).or_default().control = true,
            _ => {}
        }
    }
    loop {
        let mut changed = false;
        for n in &nodes {
            let Some(d) = n.dst else { continue };
            if n.srcs.is_empty() {
                continue;
            }
            if let Some(od) = obs.get(&d).cloned() {
                for &s in &n.srcs {
                    changed |= absorb(&mut obs, s, &od);
                }
            }
        }
        for (&lp, wps) in &load_links {
            let HKind::LocalLoad { dst } = nodes[lp].kind else {
                continue;
            };
            let Some(od) = obs.get(&dst).cloned() else {
                continue;
            };
            for &wp in wps {
                let HKind::LocalWrite { addr, value } = nodes[wp].kind else {
                    continue;
                };
                changed |= absorb(&mut obs, value, &od);
                changed |= absorb(&mut obs, addr, &od);
            }
        }
        if !changed {
            break;
        }
    }

    // Prospective coverage of the original kernel under the selective
    // sphere (paired lanes, duplicated LDS) with raw-ID reads blessed —
    // the transform will remap every builtin, so taint must not mask
    // genuinely convertible windows.
    let mut spec = CoverageSpec::new(Replication::PairedLanes {
        lds_duplicated: true,
    });
    spec.id_remaps = builtin_dsts.iter().copied().collect();
    let report = coverage(kernel, &spec);
    let baseline = report.tallies(Some(Residency::VgprLane), false);

    let uniform = uniform_regs(kernel);
    let empty = Obs::default();
    let mut windows = Vec::new();
    for w in &report.windows {
        if w.residency != Residency::VgprLane || w.protection != Protection::Vulnerable {
            continue;
        }
        let o = obs.get(&w.reg).unwrap_or(&empty);
        if o.control || o.exits.is_empty() {
            continue;
        }
        windows.push(PlanWindow {
            reg: w.reg,
            weight: w.weight,
            exits: o.exits.clone(),
        });
    }

    // Backward instruction slice per exit (cost basis): the defs feeding
    // the exit's operands, LDS stores that may feed its loads, and the
    // defs of divergent enclosing conditions (a divergent branch must be
    // re-evaluated consistently by both replicas).
    let mut defs: HashMap<Reg, Vec<usize>> = HashMap::new();
    for (i, n) in nodes.iter().enumerate() {
        if let Some(d) = n.dst {
            defs.entry(d).or_default().push(i);
        }
    }
    let divergent = |r: Reg| !uniform.contains(&r);
    let slice_for_exit = |site: &ExitSite| -> BTreeSet<usize> {
        let pos = nodes
            .iter()
            .position(|n| n.idx == site.idx)
            .expect("exit node");
        let mut insts: BTreeSet<usize> = BTreeSet::new();
        insts.insert(site.idx);
        let mut work: Vec<Reg> = nodes[pos].srcs.clone();
        work.extend(nodes[pos].conds.iter().copied().filter(|&c| divergent(c)));
        let mut seen: HashSet<Reg> = HashSet::new();
        while let Some(r) = work.pop() {
            if !seen.insert(r) {
                continue;
            }
            for &dp in defs.get(&r).map(Vec::as_slice).unwrap_or(&[]) {
                let dn = &nodes[dp];
                insts.insert(dn.idx);
                work.extend(dn.srcs.iter().copied());
                work.extend(dn.conds.iter().copied().filter(|&c| divergent(c)));
                if matches!(dn.kind, HKind::LocalLoad { .. }) {
                    for &wp in load_links.get(&dp).map(Vec::as_slice).unwrap_or(&[]) {
                        let wn = &nodes[wp];
                        insts.insert(wn.idx);
                        work.extend(wn.srcs.iter().copied());
                        work.extend(wn.conds.iter().copied().filter(|&c| divergent(c)));
                    }
                }
            }
        }
        insts
    };
    let exit_slices: Vec<BTreeSet<usize>> = exits.iter().map(slice_for_exit).collect();
    let idx_depth: HashMap<usize, u32> = nodes.iter().map(|n| (n.idx, n.depth)).collect();
    let inst_cost =
        |insts: &BTreeSet<usize>| -> u64 { insts.iter().map(|i| freq(idx_depth[i])).sum::<u64>() };
    let exit_cost = |ords: &BTreeSet<usize>| -> u64 {
        ords.iter()
            .map(|&e| COMPARE_COST * freq(exits[e].loop_depth))
            .sum::<u64>()
    };

    // Group windows by their reachable-exit set; append zero-benefit
    // residual candidates for exits no window requires, so a 100% budget
    // always plans every exit (full-flavor parity).
    let mut groups: BTreeMap<Vec<usize>, (Vec<Reg>, u64)> = BTreeMap::new();
    for w in &windows {
        let key: Vec<usize> = w.exits.iter().copied().collect();
        let e = groups.entry(key).or_default();
        e.0.push(w.reg);
        e.1 += w.weight;
    }
    let mut covered_exits: BTreeSet<usize> = BTreeSet::new();
    let mut cands: Vec<Slice> = Vec::new();
    for (key, (mut regs, weight)) in groups {
        regs.sort_unstable();
        let exits_set: BTreeSet<usize> = key.into_iter().collect();
        covered_exits.extend(exits_set.iter().copied());
        let mut insts = BTreeSet::new();
        for &e in &exits_set {
            insts.extend(exit_slices[e].iter().copied());
        }
        let cost = inst_cost(&insts) + exit_cost(&exits_set);
        cands.push(Slice {
            regs,
            weight,
            exits: exits_set,
            insts,
            cost,
            marginal_cost: 0,
            selected: false,
        });
    }
    for site in &exits {
        if covered_exits.contains(&site.ordinal) {
            continue;
        }
        let exits_set: BTreeSet<usize> = [site.ordinal].into_iter().collect();
        let insts = exit_slices[site.ordinal].clone();
        let cost = inst_cost(&insts) + exit_cost(&exits_set);
        cands.push(Slice {
            regs: Vec::new(),
            weight: 0,
            exits: exits_set,
            insts,
            cost,
            marginal_cost: 0,
            selected: false,
        });
    }

    // Greedy order: benefit/cost ratio descending (integer cross-products,
    // no float ties), then cheaper first, then smaller exit set — total and
    // deterministic because exit sets are pairwise distinct.
    cands.sort_by(|a, b| {
        let ra = a.weight as u128 * b.cost.max(1) as u128;
        let rb = b.weight as u128 * a.cost.max(1) as u128;
        rb.cmp(&ra)
            .then_with(|| a.cost.cmp(&b.cost))
            .then_with(|| a.exits.cmp(&b.exits))
    });

    // Marginal-cost accounting along the fixed order, then select the
    // longest prefix fitting the budget.
    let mut acc_insts: BTreeSet<usize> = BTreeSet::new();
    let mut acc_exits: BTreeSet<usize> = BTreeSet::new();
    let mut total_cost = 0u64;
    for c in &mut cands {
        let new_insts: BTreeSet<usize> = c.insts.difference(&acc_insts).copied().collect();
        let new_exits: BTreeSet<usize> = c.exits.difference(&acc_exits).copied().collect();
        c.marginal_cost = inst_cost(&new_insts) + exit_cost(&new_exits);
        acc_insts.extend(new_insts);
        acc_exits.extend(new_exits);
        total_cost += c.marginal_cost;
    }
    let mut selected_cost = 0u64;
    let mut selected_exits: BTreeSet<usize> = BTreeSet::new();
    for c in &mut cands {
        let within =
            (selected_cost + c.marginal_cost) as u128 * 100 <= total_cost as u128 * budget as u128;
        if !within {
            break;
        }
        c.selected = true;
        selected_cost += c.marginal_cost;
        selected_exits.extend(c.exits.iter().copied());
    }

    HardenPlan {
        budget,
        exits,
        slices: cands,
        selected_exits,
        total_cost,
        selected_cost,
        windows,
        baseline_vulnerable_weight: baseline.vulnerable_weight,
        baseline_total_weight: baseline.total_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelBuilder;

    /// Two stores: a hot one (in a loop) and a cold one, with independent
    /// dataflow — the planner must pick the cheaper/heavier one first and
    /// the budget must select a strict prefix.
    fn two_exit_kernel() -> Kernel {
        let mut b = KernelBuilder::new("two_exit");
        let inp = b.buffer_param("in");
        let out = b.buffer_param("out");
        let gid = b.global_id(0);
        let a = b.elem_addr(inp, gid);
        let x = b.load_global(a);
        let one = b.const_u32(1);
        let y = b.add_u32(x, one);
        let oa = b.elem_addr(out, gid);
        b.store_global(oa, y);
        // Cold second store of an independent chain.
        let z = b.mul_u32(x, one);
        let z2 = b.add_u32(z, one);
        b.store_global(oa, z2);
        b.finish()
    }

    #[test]
    fn full_budget_plans_every_exit() {
        let k = two_exit_kernel();
        let plan = harden(&k, &HardenConfig::with_budget(100));
        assert_eq!(plan.exits.len(), 2);
        assert_eq!(plan.selected_exits.len(), 2);
        assert_eq!(plan.selected_cost, plan.total_cost);
        assert!(!plan.is_empty());
    }

    #[test]
    fn zero_budget_plans_nothing() {
        let k = two_exit_kernel();
        let plan = harden(&k, &HardenConfig::with_budget(0));
        assert!(plan.is_empty());
        assert_eq!(plan.selected_cost, 0);
        assert_eq!(plan.predicted_detected(), 0);
    }

    #[test]
    fn plans_are_monotone_and_deterministic() {
        let k = two_exit_kernel();
        let mut prev: Option<HardenPlan> = None;
        for budget in [0u8, 25, 50, 75, 90, 100] {
            let plan = harden(&k, &HardenConfig::with_budget(budget));
            let again = harden(&k, &HardenConfig::with_budget(budget));
            assert_eq!(plan, again, "plan must be deterministic");
            if let Some(p) = &prev {
                assert!(
                    p.selected_exits.is_subset(&plan.selected_exits),
                    "budget {} lost exits vs previous",
                    budget
                );
                assert!(p.predicted_detected() <= plan.predicted_detected());
                assert!(p.predicted_vulnerable_weight() >= plan.predicted_vulnerable_weight());
            }
            prev = Some(plan);
        }
    }

    #[test]
    fn control_feeding_windows_are_not_convertible() {
        let mut b = KernelBuilder::new("ctl");
        let out = b.buffer_param("out");
        let gid = b.global_id(0);
        let ten = b.const_u32(10);
        let c = b.lt_u32(gid, ten);
        let one = b.const_u32(1);
        b.if_(c, |b| {
            let a = b.elem_addr(out, gid);
            b.store_global(a, one);
        });
        let k = b.finish();
        let plan = harden(&k, &HardenConfig::with_budget(100));
        // `c` feeds a control decision: no window on it is convertible.
        assert!(plan.windows.iter().all(|w| w.reg != c));
        // The exit itself is still planned (residual candidate).
        assert_eq!(plan.selected_exits.len(), 1);
    }

    /// A value staged through LDS still reaches the exit: the affine link
    /// must carry the store's operands into the window's exit set.
    #[test]
    fn lds_staging_links_to_exit() {
        let mut b = KernelBuilder::new("lds");
        b.set_lds_bytes(256);
        let inp = b.buffer_param("in");
        let out = b.buffer_param("out");
        let lid = b.local_id(0);
        let four = b.const_u32(4);
        let la = b.mul_u32(lid, four);
        let a = b.elem_addr(inp, lid);
        let x = b.load_global(a);
        b.store_local(la, x);
        b.barrier();
        let y = b.load_local(la);
        let oa = b.elem_addr(out, lid);
        b.store_global(oa, y);
        let k = b.finish();
        let plan = harden(&k, &HardenConfig::with_budget(100));
        // x is staged through LDS and only then stored: its window must
        // still be convertible (reaches the exit through the link).
        let wx = plan.windows.iter().find(|w| w.reg == x);
        assert!(wx.is_some(), "staged value should be convertible");
        assert!(!wx.unwrap().exits.is_empty());
    }

    #[test]
    fn disjoint_lds_regions_do_not_link() {
        let mut b = KernelBuilder::new("regions");
        b.set_lds_bytes(512);
        let out = b.buffer_param("out");
        let lid = b.local_id(0);
        let four = b.const_u32(4);
        let la = b.mul_u32(lid, four);
        let x = b.const_u32(7);
        b.store_local(la, x); // region [0, 255]
        let off = b.const_u32(256);
        let hb = b.add_u32(la, off);
        let y = b.load_local(hb); // region [256, 511]
        let oa = b.elem_addr(out, lid);
        b.store_global(oa, y);
        let k = b.finish();
        let plan = harden(&k, &HardenConfig::with_budget(100));
        // x's store lands in a region the load never reads; with a 64-lane
        // assumption-free domain the regions [0,~] may still overlap
        // symbolically, so only assert the plan is well-formed here.
        assert_eq!(plan.exits.len(), 1);
        assert!(plan.selected_exits.contains(&0));
    }
}

//! Scalar value types.

use std::fmt;

/// Interpretation of a 32-bit register value.
///
/// Registers themselves are untyped 32-bit storage (as in GCN VGPRs);
/// instructions carry a `Ty` that says how to interpret their operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// Signed 32-bit integer (two's complement).
    I32,
    /// Unsigned 32-bit integer. Also used for addresses and booleans (0/1).
    U32,
    /// IEEE-754 single-precision float.
    F32,
}

impl Ty {
    /// All types, useful for exhaustive property tests.
    pub const ALL: [Ty; 3] = [Ty::I32, Ty::U32, Ty::F32];

    /// Returns `true` for the two integer interpretations.
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I32 | Ty::U32)
    }

    /// Returns `true` for the float interpretation.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I32 => write!(f, "i32"),
            Ty::U32 => write!(f, "u32"),
            Ty::F32 => write!(f, "f32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Ty::I32.is_int());
        assert!(Ty::U32.is_int());
        assert!(!Ty::F32.is_int());
        assert!(Ty::F32.is_float());
        assert!(!Ty::U32.is_float());
    }

    #[test]
    fn display() {
        assert_eq!(Ty::I32.to_string(), "i32");
        assert_eq!(Ty::U32.to_string(), "u32");
        assert_eq!(Ty::F32.to_string(), "f32");
    }

    #[test]
    fn all_is_exhaustive() {
        for ty in Ty::ALL {
            // Every type classifies as exactly one of int/float.
            assert!(ty.is_int() ^ ty.is_float());
        }
    }
}

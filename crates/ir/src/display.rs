//! Human-readable pretty-printer for kernels (assembly-like listing).

use crate::inst::{Block, Inst};
use crate::kernel::Kernel;
use std::fmt;

struct Indent(usize);

impl fmt::Display for Indent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for _ in 0..self.0 {
            f.write_str("  ")?;
        }
        Ok(())
    }
}

fn fmt_block(b: &Block, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for inst in b.iter() {
        fmt_inst(inst, depth, f)?;
    }
    Ok(())
}

fn fmt_inst(inst: &Inst, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let ind = Indent(depth);
    match inst {
        Inst::Const { dst, ty, bits } => {
            if *ty == crate::Ty::F32 {
                writeln!(f, "{ind}{dst} = const.{ty} {}", f32::from_bits(*bits))
            } else {
                writeln!(f, "{ind}{dst} = const.{ty} {bits}")
            }
        }
        Inst::Unary { dst, op, a } => writeln!(f, "{ind}{dst} = {op} {a}"),
        Inst::Binary { dst, op, ty, a, b } => writeln!(f, "{ind}{dst} = {op}.{ty} {a}, {b}"),
        Inst::Cmp { dst, op, ty, a, b } => writeln!(f, "{ind}{dst} = cmp.{op}.{ty} {a}, {b}"),
        Inst::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => writeln!(f, "{ind}{dst} = select {cond} ? {if_true} : {if_false}"),
        Inst::Mov { dst, src } => writeln!(f, "{ind}{dst} = mov {src}"),
        Inst::ReadBuiltin { dst, builtin } => writeln!(f, "{ind}{dst} = {builtin}"),
        Inst::ReadParam { dst, index } => writeln!(f, "{ind}{dst} = param[{index}]"),
        Inst::Load { dst, space, addr } => writeln!(f, "{ind}{dst} = load.{space} [{addr}]"),
        Inst::Store { space, addr, value } => {
            writeln!(f, "{ind}store.{space} [{addr}], {value}")
        }
        Inst::Atomic {
            dst,
            space,
            op,
            addr,
            value,
        } => match dst {
            Some(d) => writeln!(f, "{ind}{d} = atomic.{op}.{space} [{addr}], {value}"),
            None => writeln!(f, "{ind}atomic.{op}.{space} [{addr}], {value}"),
        },
        Inst::Barrier => writeln!(f, "{ind}barrier"),
        Inst::Swizzle { dst, src, mode } => {
            writeln!(f, "{ind}{dst} = swizzle.{mode} {src}")
        }
        Inst::If {
            cond,
            then_blk,
            else_blk,
        } => {
            writeln!(f, "{ind}if {cond} {{")?;
            fmt_block(then_blk, depth + 1, f)?;
            if !else_blk.is_empty() {
                writeln!(f, "{ind}}} else {{")?;
                fmt_block(else_blk, depth + 1, f)?;
            }
            writeln!(f, "{ind}}}")
        }
        Inst::While {
            cond,
            cond_reg,
            body,
        } => {
            writeln!(f, "{ind}while {{")?;
            fmt_block(cond, depth + 1, f)?;
            writeln!(f, "{ind}}} test {cond_reg} {{")?;
            fmt_block(body, depth + 1, f)?;
            writeln!(f, "{ind}}}")
        }
    }
}

/// Renders a single instruction as a one-line listing fragment (nested
/// blocks are summarized, not expanded) — used by tracing tools.
pub fn inst_to_string(inst: &Inst) -> String {
    struct OneLine<'a>(&'a Inst);
    impl fmt::Display for OneLine<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self.0 {
                Inst::If { cond, .. } => write!(f, "if {cond} {{ ... }}"),
                Inst::While { cond_reg, .. } => write!(f, "while {{ ... }} test {cond_reg}"),
                other => fmt_inst(other, 0, f),
            }
        }
    }
    OneLine(inst).to_string().trim_end().to_string()
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", p.name, p.kind)?;
        }
        writeln!(f, ") lds={}B {{", self.lds_bytes)?;
        fmt_block(&self.body, 1, f)?;
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::KernelBuilder;

    #[test]
    fn listing_contains_structure() {
        let mut b = KernelBuilder::new("demo");
        let buf = b.buffer_param("buf");
        let gid = b.global_id(0);
        let addr = b.elem_addr(buf, gid);
        let v = b.load_global(addr);
        let c = b.gt_u32(v, gid);
        b.if_(c, |b| b.store_global(addr, gid));
        let k = b.finish();
        let s = k.to_string();
        assert!(s.contains("kernel demo(buf: buffer)"));
        assert!(s.contains("global_id.0"));
        assert!(s.contains("load.global"));
        assert!(s.contains("if %"));
        assert!(s.contains("store.global"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn float_constants_printed_as_floats() {
        let mut b = KernelBuilder::new("fc");
        let _ = b.const_f32(1.5);
        let k = b.finish();
        assert!(k.to_string().contains("const.f32 1.5"));
    }
}

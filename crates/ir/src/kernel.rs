//! Kernel container: parameters, LDS footprint, and body.

use crate::inst::{Block, Inst, Reg};
use crate::types::Ty;
use std::fmt;

/// What a kernel parameter binds to at launch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// A global-memory buffer; `ReadParam` yields its base byte address.
    Buffer,
    /// A 32-bit scalar immediate; `ReadParam` yields its bits.
    Scalar(Ty),
}

impl fmt::Display for ParamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamKind::Buffer => f.write_str("buffer"),
            ParamKind::Scalar(ty) => write!(f, "scalar<{ty}>"),
        }
    }
}

/// A kernel parameter declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Human-readable name (used by the pretty-printer and launch errors).
    pub name: String,
    /// Binding kind.
    pub kind: ParamKind,
}

/// A complete kernel: the unit the RMT compiler transforms and the
/// simulator launches.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (diagnostics only).
    pub name: String,
    /// Parameter declarations, bound positionally at launch.
    pub params: Vec<Param>,
    /// Bytes of LDS each work-group allocates.
    pub lds_bytes: u32,
    /// The body, executed once per work-item.
    pub body: Block,
    /// First unused virtual register number; transforms allocate fresh
    /// registers from here.
    pub next_reg: u32,
}

impl Kernel {
    /// Allocates a fresh virtual register (used by compiler transforms).
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Appends a parameter, returning its index.
    pub fn push_param(&mut self, name: impl Into<String>, kind: ParamKind) -> usize {
        self.params.push(Param {
            name: name.into(),
            kind,
        });
        self.params.len() - 1
    }

    /// Total instruction count, including nested blocks.
    pub fn total_insts(&self) -> usize {
        self.body.total_insts()
    }

    /// Visits every instruction (depth-first, program order), immutably.
    pub fn visit_insts<'a>(&'a self, f: &mut impl FnMut(&'a Inst)) {
        fn walk<'a>(b: &'a Block, f: &mut impl FnMut(&'a Inst)) {
            for inst in &b.0 {
                f(inst);
                match inst {
                    Inst::If {
                        then_blk, else_blk, ..
                    } => {
                        walk(then_blk, f);
                        walk(else_blk, f);
                    }
                    Inst::While { cond, body, .. } => {
                        walk(cond, f);
                        walk(body, f);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.body, f);
    }

    /// Counts instructions matching a predicate (recursive).
    pub fn count_insts(&self, mut pred: impl FnMut(&Inst) -> bool) -> usize {
        let mut n = 0;
        self.visit_insts(&mut |i| {
            if pred(i) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, MemSpace};

    fn tiny() -> Kernel {
        Kernel {
            name: "t".into(),
            params: vec![Param {
                name: "buf".into(),
                kind: ParamKind::Buffer,
            }],
            lds_bytes: 0,
            body: Block(vec![
                Inst::Const {
                    dst: Reg(0),
                    ty: Ty::U32,
                    bits: 4,
                },
                Inst::Binary {
                    dst: Reg(1),
                    op: BinOp::Add,
                    ty: Ty::U32,
                    a: Reg(0),
                    b: Reg(0),
                },
                Inst::Store {
                    space: MemSpace::Global,
                    addr: Reg(0),
                    value: Reg(1),
                },
            ]),
            next_reg: 2,
        }
    }

    #[test]
    fn fresh_regs_are_unique() {
        let mut k = tiny();
        let a = k.fresh_reg();
        let b = k.fresh_reg();
        assert_ne!(a, b);
        assert_eq!(a, Reg(2));
        assert_eq!(b, Reg(3));
    }

    #[test]
    fn count_and_visit() {
        let k = tiny();
        assert_eq!(k.total_insts(), 3);
        assert_eq!(k.count_insts(|i| i.is_memory()), 1);
        let mut seen = 0;
        k.visit_insts(&mut |_| seen += 1);
        assert_eq!(seen, 3);
    }

    #[test]
    fn push_param_indices() {
        let mut k = tiny();
        let i = k.push_param("extra", ParamKind::Scalar(Ty::U32));
        assert_eq!(i, 1);
        assert_eq!(k.params[1].name, "extra");
    }
}

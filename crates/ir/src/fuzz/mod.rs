//! Seeded random-kernel generation, shrinking, and a round-trippable
//! text format — the generative half of the differential RMT tester.
//!
//! The RMT transforms claim to be semantics-preserving and detection-
//! complete on *any* well-formed kernel, but the repo's evidence is a
//! 16-kernel suite plus hand-written negative tests. This module closes
//! the gap generatively:
//!
//! * [`generate`] derives a random [`FuzzCase`] — a kernel built through
//!   [`crate::KernelBuilder`] plus the launch geometry and argument values
//!   needed to run it — from a 64-bit seed. Generation is *constructive*:
//!   the grammar only emits programs that pass [`crate::validate`], keep
//!   every memory access in bounds, place barriers at uniform points, and
//!   stay inside the subset every RMT flavor supports, so each case can go
//!   straight to the differential oracle stack in `rmt-core`.
//! * [`shrink`] greedily minimizes a failing case by instruction/region
//!   deletion, re-checking `validate` and the caller's failure predicate
//!   after every candidate edit.
//! * [`serialize`] / [`parse`] round-trip a case through a line-oriented
//!   text format, so minimized counterexamples can live in the committed
//!   `fuzz/corpus/` directory and be replayed by a tier-1 test.
//!
//! Everything is a pure function of the seed: no wall clock, no global
//! state, no platform dependence. See DESIGN.md ("Generative testing")
//! for the grammar and the determinism argument.

mod gen;
mod rng;
mod shrink;
mod text;

pub use gen::{generate, GenConfig};
pub use rng::{child_seed, FuzzRng};
pub use shrink::shrink;
pub use text::{parse, serialize};

use crate::Kernel;

/// Deterministic initial contents of a buffer argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferFill {
    /// All words zero (output buffers).
    Zero,
    /// Word `i` holds `i` (index-identity inputs).
    Ramp,
    /// Word `i` holds a splitmix-style hash of `(salt, i)` — dense,
    /// irregular input data.
    Hash(u32),
}

/// One launch argument of a [`FuzzCase`], aligned with the kernel's
/// parameter list.
///
/// The fuzzer lives in `rmt-ir`, which the simulator depends on — so a
/// case cannot hold device buffers. It holds this plain-data recipe
/// instead; the oracle materializes buffers from it before each run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgSpec {
    /// A global buffer of `words` 32-bit words with deterministic
    /// initial contents.
    Buffer {
        /// Buffer length in 32-bit words.
        words: u32,
        /// Initial contents.
        fill: BufferFill,
    },
    /// A 32-bit scalar immediate (raw bits; the kernel decides the type).
    Scalar {
        /// The raw 32-bit value.
        bits: u32,
    },
}

impl ArgSpec {
    /// Materializes the initial contents of a buffer argument, or `None`
    /// for scalars.
    pub fn buffer_words(&self) -> Option<Vec<u32>> {
        match *self {
            ArgSpec::Buffer { words, fill } => Some(
                (0..words)
                    .map(|i| match fill {
                        BufferFill::Zero => 0,
                        BufferFill::Ramp => i,
                        BufferFill::Hash(salt) => hash_word(salt, i),
                    })
                    .collect(),
            ),
            ArgSpec::Scalar { .. } => None,
        }
    }
}

/// 32-bit mix of `(salt, index)` for [`BufferFill::Hash`]. Bit-stable by
/// construction — corpus files depend on it.
fn hash_word(salt: u32, i: u32) -> u32 {
    let mut x = (u64::from(salt) << 32) | u64::from(i);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) as u32
}

/// A generated kernel together with everything needed to launch it: a
/// 1-D geometry and one [`ArgSpec`] per kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// The kernel under test.
    pub kernel: Kernel,
    /// Global work-items (dimension 0; dimensions 1/2 are 1).
    pub global: u32,
    /// Work-group size (dimension 0). Divides `global`; at most 128 so
    /// the intra-group flavors can double it within the 256-item device
    /// limit.
    pub local: u32,
    /// One argument recipe per kernel parameter.
    pub args: Vec<ArgSpec>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_are_deterministic() {
        let b = ArgSpec::Buffer {
            words: 8,
            fill: BufferFill::Hash(7),
        };
        assert_eq!(b.buffer_words(), b.buffer_words());
        let r = ArgSpec::Buffer {
            words: 4,
            fill: BufferFill::Ramp,
        };
        assert_eq!(r.buffer_words(), Some(vec![0, 1, 2, 3]));
        let z = ArgSpec::Buffer {
            words: 3,
            fill: BufferFill::Zero,
        };
        assert_eq!(z.buffer_words(), Some(vec![0, 0, 0]));
        assert_eq!(ArgSpec::Scalar { bits: 5 }.buffer_words(), None);
    }

    #[test]
    fn hash_fill_varies_by_salt_and_index() {
        let a = hash_word(1, 0);
        let b = hash_word(1, 1);
        let c = hash_word(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}

//! Seeded pseudo-random streams for the kernel fuzzer.
//!
//! The whole fuzzing campaign must be a pure function of the command-line
//! seed: the same seed produces the same kernels, the same oracle inputs,
//! and the same minimized counterexamples on every host and for any
//! worker count. A hand-rolled xorshift64* keeps the stream dependency-
//! free and bit-stable forever (the standard library gives no seedable
//! generator, and the workspace deliberately carries no external crates).

/// A deterministic xorshift64* stream.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a stream from a seed. The seed is pre-mixed through
    /// splitmix64 so that small consecutive seeds (0, 1, 2, ...) still
    /// produce uncorrelated streams, and the all-zero state is avoided.
    pub fn new(seed: u64) -> Self {
        FuzzRng {
            state: splitmix64(seed).max(1),
        }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 pseudo-random bits (the high half, which xorshift64*
    /// distributes better than the low half).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u32) -> u32 {
        assert!(n > 0, "below(0)");
        // Multiply-shift range reduction: unbiased enough for fuzzing and
        // branch-free (no rejection loop to perturb stream alignment).
        ((u64::from(self.next_u32()) * u64::from(n)) >> 32) as u32
    }

    /// `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u32) -> bool {
        self.below(100) < percent
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u32) as usize]
    }
}

/// Derives the seed of the `index`-th child stream of `seed` (one fuzz
/// case per index). splitmix64 over the combined words keeps children
/// statistically independent of each other and of the parent.
pub fn child_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index.wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FuzzRng::new(1);
        let mut b = FuzzRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = FuzzRng::new(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
    }

    #[test]
    fn child_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(child_seed(99, i)), "collision at index {i}");
        }
        // Children of different parents differ too.
        assert_ne!(child_seed(1, 0), child_seed(2, 0));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = FuzzRng::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}

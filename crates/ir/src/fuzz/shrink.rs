//! Greedy structural minimization of failing cases.
//!
//! The shrinker knows nothing about *why* a case fails: the caller hands
//! it a predicate ("still fails the same way") and it searches for a
//! smaller case that keeps the predicate true. Candidate edits are
//!
//! * **Delete** — remove one instruction, including a whole `if`/`while`
//!   subtree; and
//! * **Unwrap** — replace a control container by its block contents
//!   (`if` → then-insts ++ else-insts, `while` → cond-insts ++ body-insts),
//!   which preserves the instructions while discarding the control
//!   structure around them.
//!
//! Every candidate must pass [`crate::validate`] before the (expensive)
//! predicate runs — deleting a def whose uses remain is rejected for
//! free. The scan is greedy front-to-back in preorder (containers before
//! their contents, so one accepted edit can drop a whole region) and
//! repeats until a full pass accepts nothing: the result is 1-minimal
//! with respect to the edit set. Determinism: the scan order is fixed,
//! so the same case and predicate always minimize identically.

use super::FuzzCase;
use crate::{validate, Block, Inst};

/// One candidate edit, addressed by a path of alternating
/// (instruction index, sub-block index) pairs ending at an instruction.
#[derive(Debug, Clone)]
struct Op {
    path: Vec<usize>,
    unwrap: bool,
}

/// Minimizes `case` while `still_failing` stays true.
///
/// Returns `case` unchanged if it does not satisfy the predicate to
/// begin with. The result always satisfies both `validate` and the
/// predicate.
pub fn shrink(case: &FuzzCase, still_failing: &mut dyn FnMut(&FuzzCase) -> bool) -> FuzzCase {
    let mut cur = case.clone();
    if !still_failing(&cur) {
        return cur;
    }
    loop {
        let mut changed = false;
        let mut i = 0;
        loop {
            let ops = enumerate(&cur.kernel.body);
            if i >= ops.len() {
                break;
            }
            let cand = apply(&cur, &ops[i]);
            if validate(&cand.kernel).is_ok() && still_failing(&cand) {
                // Keep `i`: the edit shifted every later position, and the
                // op now at ordinal `i` has not been tried on this shape.
                cur = cand;
                changed = true;
            } else {
                i += 1;
            }
        }
        if !changed {
            return cur;
        }
    }
}

/// All candidate edits, preorder (containers before their contents).
fn enumerate(body: &Block) -> Vec<Op> {
    let mut ops = Vec::new();
    walk(body, &mut Vec::new(), &mut ops);
    ops
}

fn walk(b: &Block, path: &mut Vec<usize>, ops: &mut Vec<Op>) {
    for (i, inst) in b.iter().enumerate() {
        path.push(i);
        ops.push(Op {
            path: path.clone(),
            unwrap: false,
        });
        let sub_blocks: &[&Block] = match inst {
            Inst::If {
                then_blk, else_blk, ..
            } => &[then_blk, else_blk],
            Inst::While { cond, body, .. } => &[cond, body],
            _ => &[],
        };
        if !sub_blocks.is_empty() {
            ops.push(Op {
                path: path.clone(),
                unwrap: true,
            });
            for (s, blk) in sub_blocks.iter().enumerate() {
                path.push(s);
                walk(blk, path, ops);
                path.pop();
            }
        }
        path.pop();
    }
}

fn apply(case: &FuzzCase, op: &Op) -> FuzzCase {
    let mut out = case.clone();
    edit(&mut out.kernel.body, &op.path, op.unwrap);
    out
}

/// Applies one edit at `path` inside `b`.
fn edit(b: &mut Block, path: &[usize], unwrap: bool) {
    let i = path[0];
    if path.len() == 1 {
        if !unwrap {
            b.0.remove(i);
            return;
        }
        // Unwrap the container in place.
        let inst = b.0.remove(i);
        let spliced: Vec<Inst> = match inst {
            Inst::If {
                then_blk, else_blk, ..
            } => then_blk.0.into_iter().chain(else_blk.0).collect(),
            Inst::While { cond, body, .. } => cond.0.into_iter().chain(body.0).collect(),
            other => vec![other], // unreachable for well-formed ops
        };
        b.0.splice(i..i, spliced);
        return;
    }
    let sub = path[1];
    match &mut b.0[i] {
        Inst::If {
            then_blk, else_blk, ..
        } => {
            let blk = if sub == 0 { then_blk } else { else_blk };
            edit(blk, &path[2..], unwrap);
        }
        Inst::While { cond, body, .. } => {
            let blk = if sub == 0 { cond } else { body };
            edit(blk, &path[2..], unwrap);
        }
        _ => unreachable!("path descends through a non-container"),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{generate, GenConfig};
    use super::*;
    use crate::MemSpace;

    /// Finds a seed whose generated kernel contains at least one of the
    /// wanted instruction kind.
    fn seed_with(pred: impl Fn(&Inst) -> bool) -> (u64, FuzzCase) {
        let cfg = GenConfig::default();
        for seed in 0..500 {
            let case = generate(seed, &cfg);
            if case.kernel.count_insts(&pred) > 0 {
                return (seed, case);
            }
        }
        panic!("no seed in 0..500 produced the wanted instruction");
    }

    #[test]
    fn shrinks_to_single_atomic() {
        let (seed, case) = seed_with(|i| matches!(i, Inst::Atomic { .. }));
        let before = case.kernel.total_insts();
        let mut pred =
            |c: &FuzzCase| c.kernel.count_insts(|i| matches!(i, Inst::Atomic { .. })) > 0;
        let small = shrink(&case, &mut pred);
        let after = small.kernel.total_insts();
        assert!(after < before, "seed {seed}: {before} -> {after}");
        assert!(pred(&small));
        assert_eq!(validate(&small.kernel), Ok(()));
        // The atomic plus its transitive operand chain (an address, a
        // value, and the param reads feeding them) is all that remains.
        assert!(after <= 12, "seed {seed}: shrank only to {after} insts");
    }

    #[test]
    fn shrinks_away_control_flow_wrappers() {
        // A predicate about LDS traffic must not keep unrelated ifs/loops
        // alive.
        let (seed, case) = seed_with(|i| {
            matches!(
                i,
                Inst::Store {
                    space: MemSpace::Local,
                    ..
                }
            )
        });
        let mut pred = |c: &FuzzCase| {
            c.kernel.count_insts(|i| {
                matches!(
                    i,
                    Inst::Store {
                        space: MemSpace::Local,
                        ..
                    }
                )
            }) > 0
        };
        let small = shrink(&case, &mut pred);
        assert_eq!(
            small.kernel.count_insts(Inst::is_control),
            0,
            "seed {seed}: control flow survived an LDS-store predicate: {}",
            super::super::serialize(&small)
        );
    }

    #[test]
    fn non_failing_case_is_returned_unchanged() {
        let case = generate(1, &GenConfig::default());
        let mut pred = |_: &FuzzCase| false;
        let same = shrink(&case, &mut pred);
        assert_eq!(same, case);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let (_, case) = seed_with(|i| matches!(i, Inst::Atomic { .. }));
        let mut p1 = |c: &FuzzCase| c.kernel.count_insts(|i| matches!(i, Inst::Atomic { .. })) > 0;
        let mut p2 = |c: &FuzzCase| c.kernel.count_insts(|i| matches!(i, Inst::Atomic { .. })) > 0;
        assert_eq!(shrink(&case, &mut p1), shrink(&case, &mut p2));
    }
}

//! The seeded random kernel generator.
//!
//! Generation is *correct by construction* rather than generate-and-
//! filter: every case that comes out of [`generate`] already
//!
//! * passes [`crate::validate`] (registers defined before use, barriers
//!   only at uniform points — the grammar places them exclusively in
//!   top-level straight-line code);
//! * keeps every memory access 4-byte aligned and in bounds (loads gather
//!   through `% words`; stores write each work-item's own slot), so the
//!   simulator's hard bounds checks can never fire;
//! * is free of cross-work-item races that would make outputs schedule-
//!   dependent: plain global stores are own-slot (`out[gid]`), LDS writes
//!   are `lds[lid + c]` with one offset `c` per barrier interval, LDS
//!   reads only happen in intervals with no writes, and global atomics
//!   use commutative operators (add/min/max) only — the differential
//!   oracle depends on the *original* kernel being deterministic under
//!   any execution order;
//! * stays inside the subset all four RMT flavors support: no user
//!   swizzles, no local atomics, no atomics whose result re-enters the
//!   sphere of replication, work-groups of at most 128 so intra-group
//!   doubling fits the 256-item device limit.
//!
//! Within those constraints the grammar is deliberately rich: signed/
//! unsigned/float ALU chains, transcendentals, converts, selects and
//! compares, affine and gathered addressing, nested `if`s (including on
//! divergent conditions), uniform counted loops, divergent bounded
//! `while` loops, multi-interval LDS traffic, and inter-group atomics.

use super::{ArgSpec, BufferFill, FuzzCase, FuzzRng};
use crate::{AtomicOp, BinOp, CmpOp, KernelBuilder, MemSpace, Reg, Ty, UnOp};

/// Tunables for [`generate`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Statement budget (top-level and nested combined). The emitted
    /// instruction count is a small multiple of this (addressing helpers
    /// expand to a few instructions each).
    pub max_stmts: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { max_stmts: 24 }
    }
}

/// Generates the case for `seed`. Pure: same seed, same case, forever.
pub fn generate(seed: u64, cfg: &GenConfig) -> FuzzCase {
    let mut rng = FuzzRng::new(seed);

    let local = *rng.pick(&[8u32, 16, 32, 64, 128]);
    let groups = 1 + rng.below(2);
    let global = local * groups;

    let use_lds = rng.chance(60);
    let use_atomics = rng.chance(40);
    let lds_words = if use_lds { local + 8 * rng.below(3) } else { 0 };

    let mut b = KernelBuilder::new(format!("fuzz_{seed:016x}"));
    b.set_lds_bytes(lds_words * 4);
    let mut args: Vec<ArgSpec> = Vec::new();

    // Parameters. Roles are fixed by construction: `in*` are read-only,
    // `out*` are own-slot store targets, `accum` takes atomics only —
    // mixing roles on one buffer would let writes race with reads and
    // make the output schedule-dependent.
    let mut loadable: Vec<(Reg, u32)> = Vec::new();
    let in0 = b.buffer_param("in0");
    args.push(ArgSpec::Buffer {
        words: global,
        fill: BufferFill::Hash(rng.next_u32()),
    });
    loadable.push((in0, global));
    if rng.chance(50) {
        let in1 = b.buffer_param("in1");
        args.push(ArgSpec::Buffer {
            words: global,
            fill: BufferFill::Ramp,
        });
        loadable.push((in1, global));
    }
    let mut stores: Vec<Reg> = Vec::new();
    let out = b.buffer_param("out");
    args.push(ArgSpec::Buffer {
        words: global,
        fill: BufferFill::Zero,
    });
    stores.push(out);
    if rng.chance(30) {
        let out1 = b.buffer_param("out1");
        args.push(ArgSpec::Buffer {
            words: global,
            fill: BufferFill::Zero,
        });
        stores.push(out1);
    }
    let accum = if use_atomics {
        let acc = b.buffer_param("accum");
        let words = 4 + rng.below(13);
        args.push(ArgSpec::Buffer {
            words,
            fill: BufferFill::Hash(rng.next_u32()),
        });
        // One op kind for the whole buffer: atomics of a single kind
        // commute with each other, so the final contents are independent
        // of execution order — which the transforms reshuffle. Mixing
        // kinds on one word (e.g. `min` then `add`) would make even the
        // original kernel's result order-dependent.
        let op = *rng.pick(&[AtomicOp::Add, AtomicOp::Min, AtomicOp::Max]);
        Some((acc, words, op))
    } else {
        None
    };

    let mut ints: Vec<Reg> = Vec::new();
    let mut floats: Vec<Reg> = Vec::new();
    if rng.chance(50) {
        let s = b.scalar_param("n", Ty::U32);
        args.push(ArgSpec::Scalar {
            bits: rng.below(64),
        });
        ints.push(s);
    }
    if rng.chance(40) {
        let s = b.scalar_param("w", Ty::F32);
        args.push(ArgSpec::Scalar {
            bits: (rng.below(64) as f32 / 8.0 - 2.0).to_bits(),
        });
        floats.push(s);
    }

    // Prelude: the ID surface plus a few constants seed the value pools.
    let gid = b.global_id(0);
    let lid = b.local_id(0);
    ints.push(gid);
    ints.push(lid);
    if rng.chance(40) {
        ints.push(b.group_id(0));
    }
    if rng.chance(30) {
        ints.push(b.local_size(0));
    }
    ints.push(b.const_u32(1 + rng.below(9)));
    ints.push(b.const_u32(rng.next_u32()));
    floats.push(b.const_f32(rng.below(32) as f32 / 4.0 + 0.5));
    let f0 = b.u32_to_f32(gid);
    floats.push(f0);
    let lim = b.const_u32(1 + rng.below(local));
    let c0 = b.lt_u32(lid, lim);
    let bools = vec![c0];

    let mut g = Gen {
        rng,
        ints,
        floats,
        bools,
        stores,
        loadable,
        accum,
        gid,
        lid,
        global,
        local,
        lds_words,
        lds_read_phase: false,
        lds_c: 0,
        loop_depth: 0,
        budget: cfg.max_stmts,
    };
    g.lds_c = g.pick_interval_offset();

    while g.budget > 0 {
        g.stmt(&mut b, 0);
    }

    // Every case ends with an own-slot store of live data: the kernel is
    // guaranteed a sphere-of-replication exit, and the differential
    // oracle a signal to compare.
    let a = g.take_int(&mut b);
    let x = g.take_int(&mut b);
    let sum = b.xor_u32(a, x);
    let dst = *g.rng.pick(&g.stores);
    let addr = b.elem_addr(dst, gid);
    b.store_global(addr, sum);

    let kernel = b.finish();
    debug_assert_eq!(crate::validate(&kernel), Ok(()), "generator invariant");
    FuzzCase {
        kernel,
        global,
        local,
        args,
    }
}

struct Gen {
    rng: FuzzRng,
    ints: Vec<Reg>,
    floats: Vec<Reg>,
    bools: Vec<Reg>,
    stores: Vec<Reg>,
    loadable: Vec<(Reg, u32)>,
    accum: Option<(Reg, u32, AtomicOp)>,
    gid: Reg,
    lid: Reg,
    global: u32,
    local: u32,
    lds_words: u32,
    /// Barrier intervals alternate: writes land in even intervals, reads
    /// in odd ones, so no interval ever holds both.
    lds_read_phase: bool,
    /// Offset `c` of the current write interval's `lds[lid + c]` slots.
    lds_c: u32,
    /// How many `while` loops enclose the current emission point. SoR
    /// exits (global stores and atomics) are kept out of loops: the FAST
    /// flavor swizzles their operands, and under a loop-carried condition
    /// the lint cannot prove the guard uniform across replica lane pairs.
    loop_depth: usize,
    budget: usize,
}

/// Statement kinds the grammar draws from, weighted per context.
#[derive(Clone, Copy, PartialEq)]
enum Stmt {
    IntOp,
    FloatOp,
    FloatUn,
    Convert,
    Compare,
    Select,
    GlobalLoad,
    GlobalStore,
    LdsStore,
    LdsLoad,
    Atomic,
    Barrier,
    If,
    CountedLoop,
    DivergentLoop,
}

impl Gen {
    fn pick_interval_offset(&mut self) -> u32 {
        if self.lds_words > self.local {
            self.rng.below(self.lds_words - self.local + 1)
        } else {
            0
        }
    }

    fn take_int(&mut self, _b: &mut KernelBuilder) -> Reg {
        *self.rng.pick(&self.ints)
    }

    fn take_float(&mut self) -> Reg {
        *self.rng.pick(&self.floats)
    }

    /// An index provably `< words`: the identity `gid` (only if `words`
    /// covers the NDRange and the caller allows it), an affine
    /// `(gid + c) % words`, or a gathered `value % words`.
    ///
    /// LDS gathers must not use the identity arm: a raw `gid` term
    /// decomposes into a group-scaled expression the lint cannot bound
    /// (group count is unknown), so it cannot separate the access from
    /// the comm slots the intra transforms append after the user LDS.
    /// The `%` arms yield range-bounded atoms instead.
    fn gather_index(&mut self, b: &mut KernelBuilder, words: u32, allow_identity: bool) -> Reg {
        let wc = b.const_u32(words);
        match self.rng.below(3) {
            0 if allow_identity && words == self.global => self.gid,
            1 => {
                let c = b.const_u32(self.rng.below(words));
                let shifted = b.add_u32(self.gid, c);
                b.rem_u32(shifted, wc)
            }
            _ => {
                let v = self.take_int(b);
                b.rem_u32(v, wc)
            }
        }
    }

    /// Emits one statement (possibly a whole nested region) at `depth`.
    fn stmt(&mut self, b: &mut KernelBuilder, depth: usize) {
        self.budget = self.budget.saturating_sub(1);
        let top = depth == 0;
        let mut menu: Vec<(u32, Stmt)> = vec![
            (24, Stmt::IntOp),
            (12, Stmt::FloatOp),
            (5, Stmt::FloatUn),
            (6, Stmt::Convert),
            (7, Stmt::Compare),
            (5, Stmt::Select),
            (10, Stmt::GlobalLoad),
        ];
        if self.loop_depth == 0 {
            menu.push((8, Stmt::GlobalStore));
        }
        if self.lds_words > 0 && top && !self.lds_read_phase {
            menu.push((8, Stmt::LdsStore));
        }
        if self.lds_words > 0 && self.lds_read_phase {
            menu.push((8, Stmt::LdsLoad));
        }
        if self.accum.is_some() && self.loop_depth == 0 {
            menu.push((5, Stmt::Atomic));
        }
        if self.lds_words > 0 && top {
            menu.push((5, Stmt::Barrier));
        }
        if depth < 2 && self.budget >= 2 {
            menu.push((7, Stmt::If));
            menu.push((4, Stmt::CountedLoop));
            menu.push((3, Stmt::DivergentLoop));
        }
        let total: u32 = menu.iter().map(|(w, _)| w).sum();
        let mut roll = self.rng.below(total);
        let kind = menu
            .iter()
            .find(|(w, _)| {
                if roll < *w {
                    true
                } else {
                    roll -= w;
                    false
                }
            })
            .expect("weights cover the roll")
            .1;
        self.emit(b, kind, depth);
    }

    fn emit(&mut self, b: &mut KernelBuilder, kind: Stmt, depth: usize) {
        match kind {
            Stmt::IntOp => {
                let ops = [
                    (BinOp::Add, Ty::U32),
                    (BinOp::Sub, Ty::U32),
                    (BinOp::Mul, Ty::U32),
                    (BinOp::Div, Ty::U32),
                    (BinOp::Rem, Ty::U32),
                    (BinOp::And, Ty::U32),
                    (BinOp::Or, Ty::U32),
                    (BinOp::Xor, Ty::U32),
                    (BinOp::Shl, Ty::U32),
                    (BinOp::Shr, Ty::U32),
                    (BinOp::Min, Ty::U32),
                    (BinOp::Max, Ty::U32),
                    (BinOp::Add, Ty::I32),
                    (BinOp::Sub, Ty::I32),
                    (BinOp::Mul, Ty::I32),
                    (BinOp::Shr, Ty::I32),
                    (BinOp::Min, Ty::I32),
                    (BinOp::Max, Ty::I32),
                ];
                let (op, ty) = *self.rng.pick(&ops);
                let x = self.take_int(b);
                let y = self.take_int(b);
                let r = b.binary(op, ty, x, y);
                self.ints.push(r);
            }
            Stmt::FloatOp => {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Min,
                    BinOp::Max,
                ];
                let op = *self.rng.pick(&ops);
                let x = self.take_float();
                let y = self.take_float();
                let r = b.binary(op, Ty::F32, x, y);
                self.floats.push(r);
            }
            Stmt::FloatUn => {
                let ops = [
                    UnOp::Abs,
                    UnOp::Neg,
                    UnOp::Sqrt,
                    UnOp::Rsqrt,
                    UnOp::Exp,
                    UnOp::Log,
                    UnOp::Sin,
                    UnOp::Cos,
                    UnOp::Floor,
                ];
                let op = *self.rng.pick(&ops);
                let x = self.take_float();
                let r = b.unary(op, x);
                self.floats.push(r);
            }
            Stmt::Convert => {
                if self.rng.chance(50) {
                    let x = self.take_int(b);
                    let r = b.u32_to_f32(x);
                    self.floats.push(r);
                } else {
                    let x = self.take_float();
                    let r = b.f32_to_u32(x);
                    self.ints.push(r);
                }
            }
            Stmt::Compare => {
                let ops = [
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ];
                let op = *self.rng.pick(&ops);
                let r = if self.rng.chance(70) {
                    let x = self.take_int(b);
                    let y = self.take_int(b);
                    b.cmp(op, Ty::U32, x, y)
                } else {
                    let x = self.take_float();
                    let y = self.take_float();
                    b.cmp(op, Ty::F32, x, y)
                };
                self.bools.push(r);
            }
            Stmt::Select => {
                let c = *self.rng.pick(&self.bools);
                if self.rng.chance(60) {
                    let x = self.take_int(b);
                    let y = self.take_int(b);
                    let r = b.select(c, x, y);
                    self.ints.push(r);
                } else {
                    let x = self.take_float();
                    let y = self.take_float();
                    let r = b.select(c, x, y);
                    self.floats.push(r);
                }
            }
            Stmt::GlobalLoad => {
                let (base, words) = *self.rng.pick(&self.loadable);
                let idx = self.gather_index(b, words, true);
                let addr = b.elem_addr(base, idx);
                let v = b.load_global(addr);
                self.ints.push(v);
            }
            Stmt::GlobalStore => {
                // Own slot only: two work-items never write the same
                // word, so the final contents are order-independent.
                let dst = *self.rng.pick(&self.stores);
                let v = if self.rng.chance(75) {
                    self.take_int(b)
                } else {
                    self.take_float()
                };
                let addr = b.elem_addr(dst, self.gid);
                b.store_global(addr, v);
            }
            Stmt::LdsStore => {
                // `lds[lid + c]` with one `c` per interval: distinct
                // work-items hit distinct words, repeated stores by one
                // item resolve in program order.
                let c = b.const_u32(self.lds_c);
                let slot = b.add_u32(self.lid, c);
                let four = b.const_u32(4);
                let addr = b.mul_u32(slot, four);
                let v = self.take_int(b);
                b.store_local(addr, v);
            }
            Stmt::LdsLoad => {
                let idx = self.gather_index(b, self.lds_words, false);
                let four = b.const_u32(4);
                let addr = b.mul_u32(idx, four);
                let v = b.load_local(addr);
                self.ints.push(v);
            }
            Stmt::Atomic => {
                let (acc, words, op) = self.accum.expect("menu gated");
                let idx = self.gather_index(b, words, true);
                let addr = b.elem_addr(acc, idx);
                let v = self.take_int(b);
                b.atomic_noret(MemSpace::Global, op, addr, v);
            }
            Stmt::Barrier => {
                b.barrier();
                self.lds_read_phase = !self.lds_read_phase;
                if !self.lds_read_phase {
                    self.lds_c = self.pick_interval_offset();
                }
            }
            Stmt::If => {
                let cond = *self.rng.pick(&self.bools);
                let n = 1 + self.rng.below(3) as usize;
                self.block(b, cond, n, depth);
                if self.rng.chance(40) && self.budget > 0 {
                    // An else-like arm: a second region guarded by the
                    // boolean's negation.
                    let zero = b.const_u32(0);
                    let ncond = b.eq_u32(cond, zero);
                    let n = 1 + self.rng.below(2) as usize;
                    self.block(b, ncond, n, depth);
                }
            }
            Stmt::CountedLoop => {
                // Uniform trip count: both bounds are constants.
                let zero = b.const_u32(0);
                let end = b.const_u32(1 + self.rng.below(4));
                let n = 1 + self.rng.below(3) as usize;
                let mark = self.checkpoint();
                self.loop_depth += 1;
                b.for_range(zero, end, |b, i| {
                    self.ints.push(i);
                    for _ in 0..n {
                        self.nested_stmt(b, depth + 1);
                    }
                });
                self.loop_depth -= 1;
                self.rollback(mark);
            }
            Stmt::DivergentLoop => {
                // Bounded divergent trip count: `i < (v & 3)` differs per
                // lane but terminates within 3 iterations.
                let three = b.const_u32(3);
                let v = self.take_int(b);
                let bound = b.and_u32(v, three);
                let one = b.const_u32(1);
                let zero = b.const_u32(0);
                let i = b.fresh();
                b.mov_to(i, zero);
                let n = 1 + self.rng.below(2) as usize;
                let mark = self.checkpoint();
                self.loop_depth += 1;
                b.while_(
                    |b| b.lt_u32(i, bound),
                    |b| {
                        for _ in 0..n {
                            self.nested_stmt(b, depth + 1);
                        }
                        let next = b.add_u32(i, one);
                        b.mov_to(i, next);
                    },
                );
                self.loop_depth -= 1;
                self.rollback(mark);
            }
        }
    }

    /// A `then`-only region; values defined inside stay inside.
    fn block(&mut self, b: &mut KernelBuilder, cond: Reg, n: usize, depth: usize) {
        let mark = self.checkpoint();
        b.if_(cond, |b| {
            for _ in 0..n {
                self.nested_stmt(b, depth + 1);
            }
        });
        self.rollback(mark);
    }

    /// A statement drawn for a nested context (no barriers or LDS stores;
    /// the menu gating in [`Gen::stmt`] enforces it via `depth`).
    fn nested_stmt(&mut self, b: &mut KernelBuilder, depth: usize) {
        self.stmt(b, depth);
    }

    /// Pool checkpointing keeps register scoping honest: a register
    /// defined inside a branch or loop body must not be referenced after
    /// the region closes (it may never have executed).
    fn checkpoint(&self) -> (usize, usize, usize) {
        (self.ints.len(), self.floats.len(), self.bools.len())
    }

    fn rollback(&mut self, mark: (usize, usize, usize)) {
        self.ints.truncate(mark.0);
        self.floats.truncate(mark.1);
        self.bools.truncate(mark.2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, Inst};

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn generated_kernels_validate() {
        let cfg = GenConfig::default();
        for seed in 0..300 {
            let case = generate(seed, &cfg);
            assert_eq!(validate(&case.kernel), Ok(()), "seed {seed}");
            assert_eq!(case.args.len(), case.kernel.params.len(), "seed {seed}");
            assert_eq!(case.global % case.local, 0, "seed {seed}");
            assert!(case.local <= 128, "seed {seed}");
        }
    }

    #[test]
    fn every_case_has_a_sor_exit() {
        let cfg = GenConfig::default();
        for seed in 0..100 {
            let case = generate(seed, &cfg);
            let stores = case.kernel.count_insts(|i| {
                matches!(
                    i,
                    Inst::Store {
                        space: crate::MemSpace::Global,
                        ..
                    }
                )
            });
            assert!(stores >= 1, "seed {seed}");
        }
    }

    #[test]
    fn grammar_reaches_all_constructs() {
        // Across a modest seed range the grammar must exercise control
        // flow, LDS traffic, barriers, and atomics.
        let cfg = GenConfig::default();
        let (mut ifs, mut loops, mut lds, mut barriers, mut atomics) = (0, 0, 0, 0, 0);
        for seed in 0..100 {
            let case = generate(seed, &cfg);
            ifs += case.kernel.count_insts(|i| matches!(i, Inst::If { .. }));
            loops += case.kernel.count_insts(|i| matches!(i, Inst::While { .. }));
            lds += case.kernel.count_insts(|i| {
                matches!(
                    i,
                    Inst::Store {
                        space: crate::MemSpace::Local,
                        ..
                    } | Inst::Load {
                        space: crate::MemSpace::Local,
                        ..
                    }
                )
            });
            barriers += case.kernel.count_insts(|i| matches!(i, Inst::Barrier));
            atomics += case
                .kernel
                .count_insts(|i| matches!(i, Inst::Atomic { .. }));
        }
        assert!(ifs > 0, "no ifs generated");
        assert!(loops > 0, "no loops generated");
        assert!(lds > 0, "no LDS traffic generated");
        assert!(barriers > 0, "no barriers generated");
        assert!(atomics > 0, "no atomics generated");
    }
}

//! A round-trippable text format for [`FuzzCase`]s.
//!
//! Minimized counterexamples live as `.rmt` files in the committed
//! `fuzz/corpus/` directory and are replayed by a tier-1 test, so the
//! format must be exact: `parse(serialize(case)) == case`, bit for bit.
//! Constants are therefore written as raw hex patterns (the pretty-
//! printer in `display.rs` renders floats lossily and is not reused),
//! and `next_reg` is stored explicitly rather than recomputed.
//!
//! The format is line-oriented: `#` starts a comment, blank lines are
//! ignored, nested blocks open with a trailing `{` and close with a line
//! holding `}` (or `} else {` / `} body {` between the two blocks of an
//! `if` / `while`).

use super::{ArgSpec, BufferFill, FuzzCase};
use crate::{
    AtomicOp, BinOp, Block, Builtin, CmpOp, Dim, Inst, Kernel, MemSpace, Param, ParamKind, Reg,
    SwizzleMode, Ty, UnOp,
};
use std::fmt::Write as _;

/// Renders a case to the corpus text format.
pub fn serialize(case: &FuzzCase) -> String {
    let mut s = String::new();
    let k = &case.kernel;
    let _ = writeln!(s, "case {}", k.name);
    let _ = writeln!(s, "launch global={} local={}", case.global, case.local);
    let _ = writeln!(s, "lds {}", k.lds_bytes);
    let _ = writeln!(s, "next_reg {}", k.next_reg);
    for (p, a) in k.params.iter().zip(&case.args) {
        let kind = match p.kind {
            ParamKind::Buffer => "buffer".to_string(),
            ParamKind::Scalar(ty) => format!("scalar {ty}"),
        };
        let spec = match *a {
            ArgSpec::Buffer { words, fill } => {
                let fill = match fill {
                    BufferFill::Zero => "zero".to_string(),
                    BufferFill::Ramp => "ramp".to_string(),
                    BufferFill::Hash(salt) => format!("hash:{salt:#010x}"),
                };
                format!("words={words} fill={fill}")
            }
            ArgSpec::Scalar { bits } => format!("bits={bits:#010x}"),
        };
        let _ = writeln!(s, "param {} {kind} {spec}", p.name);
    }
    s.push_str("body {\n");
    write_block(&mut s, &k.body, 1);
    s.push_str("}\n");
    s
}

fn indent(s: &mut String, depth: usize) {
    for _ in 0..depth {
        s.push_str("  ");
    }
}

fn write_block(s: &mut String, b: &Block, depth: usize) {
    for inst in b.iter() {
        indent(s, depth);
        match inst {
            Inst::Const { dst, ty, bits } => {
                let _ = writeln!(s, "const {dst} {ty} {bits:#010x}");
            }
            Inst::Unary { dst, op, a } => {
                let _ = writeln!(s, "un {dst} {op} {a}");
            }
            Inst::Binary { dst, op, ty, a, b } => {
                let _ = writeln!(s, "bin {dst} {op} {ty} {a} {b}");
            }
            Inst::Cmp { dst, op, ty, a, b } => {
                let _ = writeln!(s, "cmp {dst} {op} {ty} {a} {b}");
            }
            Inst::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                let _ = writeln!(s, "sel {dst} {cond} {if_true} {if_false}");
            }
            Inst::Mov { dst, src } => {
                let _ = writeln!(s, "mov {dst} {src}");
            }
            Inst::ReadBuiltin { dst, builtin } => {
                let _ = writeln!(s, "builtin {dst} {builtin}");
            }
            Inst::ReadParam { dst, index } => {
                let _ = writeln!(s, "readparam {dst} {index}");
            }
            Inst::Load { dst, space, addr } => {
                let _ = writeln!(s, "load {dst} {space} {addr}");
            }
            Inst::Store { space, addr, value } => {
                let _ = writeln!(s, "store {space} {addr} {value}");
            }
            Inst::Atomic {
                dst,
                space,
                op,
                addr,
                value,
            } => {
                let d = match dst {
                    Some(r) => format!("{r}"),
                    None => "_".to_string(),
                };
                let o = match op {
                    AtomicOp::Add => "add".to_string(),
                    AtomicOp::Exchange => "xchg".to_string(),
                    AtomicOp::CmpXchg { cmp } => format!("cmpxchg:{cmp}"),
                    AtomicOp::Max => "max".to_string(),
                    AtomicOp::Min => "min".to_string(),
                };
                let _ = writeln!(s, "atomic {d} {space} {o} {addr} {value}");
            }
            Inst::Barrier => {
                s.push_str("barrier\n");
            }
            Inst::Swizzle { dst, src, mode } => {
                let _ = writeln!(s, "swizzle {dst} {src} {mode}");
            }
            Inst::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let _ = writeln!(s, "if {cond} {{");
                write_block(s, then_blk, depth + 1);
                indent(s, depth);
                s.push_str("} else {\n");
                write_block(s, else_blk, depth + 1);
                indent(s, depth);
                s.push_str("}\n");
            }
            Inst::While {
                cond,
                cond_reg,
                body,
            } => {
                let _ = writeln!(s, "while {cond_reg} {{");
                write_block(s, cond, depth + 1);
                indent(s, depth);
                s.push_str("} body {\n");
                write_block(s, body, depth + 1);
                indent(s, depth);
                s.push_str("}\n");
            }
        }
    }
}

/// Parses the corpus text format. Errors name the offending line.
pub fn parse(text: &str) -> Result<FuzzCase, String> {
    let mut p = Parser {
        lines: text
            .lines()
            .enumerate()
            .map(|(n, l)| (n + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
            .collect(),
        pos: 0,
    };
    let name = p.expect_prefixed("case")?.to_string();
    let launch = p.expect_prefixed("launch")?;
    let (global, local) = parse_launch(launch).map_err(|e| p.err_prev(&e))?;
    let lds_bytes = p
        .expect_prefixed("lds")?
        .parse::<u32>()
        .map_err(|e| p.err_prev(&format!("bad lds byte count: {e}")))?;
    let next_reg = p
        .expect_prefixed("next_reg")?
        .parse::<u32>()
        .map_err(|e| p.err_prev(&format!("bad next_reg: {e}")))?;
    let mut params = Vec::new();
    let mut args = Vec::new();
    while let Some(rest) = p.take_prefixed("param") {
        let (param, arg) = parse_param(rest).map_err(|e| p.err_prev(&e))?;
        params.push(param);
        args.push(arg);
    }
    let body_open = p.next_line()?;
    if body_open != "body {" {
        return Err(p.err_prev("expected `body {`"));
    }
    let body = p.parse_block()?;
    if p.pos != p.lines.len() {
        return Err(p.err_here("trailing content after the body block"));
    }
    Ok(FuzzCase {
        kernel: Kernel {
            name,
            params,
            lds_bytes,
            body,
            next_reg,
        },
        global,
        local,
        args,
    })
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn next_line(&mut self) -> Result<&'a str, String> {
        match self.lines.get(self.pos) {
            Some(&(_, l)) => {
                self.pos += 1;
                Ok(l)
            }
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn err_here(&self, msg: &str) -> String {
        match self.lines.get(self.pos) {
            Some(&(n, l)) => format!("line {n} (`{l}`): {msg}"),
            None => format!("at end of input: {msg}"),
        }
    }

    fn err_prev(&self, msg: &str) -> String {
        match self.lines.get(self.pos.saturating_sub(1)) {
            Some(&(n, l)) => format!("line {n} (`{l}`): {msg}"),
            None => format!("at end of input: {msg}"),
        }
    }

    fn expect_prefixed(&mut self, key: &str) -> Result<&'a str, String> {
        let err = self.err_here(&format!("expected `{key} ...`"));
        let line = self.next_line().map_err(|_| err.clone())?;
        line.strip_prefix(key)
            .map(str::trim)
            .filter(|r| !r.is_empty())
            .ok_or(err)
    }

    fn take_prefixed(&mut self, key: &str) -> Option<&'a str> {
        let &(_, line) = self.lines.get(self.pos)?;
        let rest = line.strip_prefix(key)?;
        if !rest.starts_with(' ') {
            return None;
        }
        self.pos += 1;
        Some(rest.trim())
    }

    /// Parses instruction lines until the closing `}`-family line, which
    /// is consumed and returned.
    fn parse_block_until(&mut self) -> Result<(Block, &'a str), String> {
        let mut insts = Vec::new();
        loop {
            let err = self.err_here("expected an instruction or `}`");
            let line = self.next_line().map_err(|_| err)?;
            if line == "}" || line == "} else {" || line == "} body {" {
                return Ok((Block(insts), line));
            }
            let inst = self.parse_inst(line).map_err(|e| {
                // Nested block errors already carry their own location.
                if e.starts_with("line ") || e.starts_with("at end of input") {
                    e
                } else {
                    self.err_prev(&e)
                }
            })?;
            insts.push(inst);
        }
    }

    /// Parses a block that must close with a bare `}`.
    fn parse_block(&mut self) -> Result<Block, String> {
        let (b, close) = self.parse_block_until()?;
        if close != "}" {
            return Err(self.err_prev("expected `}` to close this block"));
        }
        Ok(b)
    }

    fn parse_inst(&mut self, line: &str) -> Result<Inst, String> {
        let fail = |msg: &str| -> String { format!("`{line}`: {msg}") };
        let toks: Vec<&str> = line.split_whitespace().collect();
        let inst = match toks[0] {
            "const" if toks.len() == 4 => Inst::Const {
                dst: reg(toks[1]).map_err(|e| fail(&e))?,
                ty: ty(toks[2]).map_err(|e| fail(&e))?,
                bits: hex32(toks[3]).map_err(|e| fail(&e))?,
            },
            "un" if toks.len() == 4 => Inst::Unary {
                dst: reg(toks[1]).map_err(|e| fail(&e))?,
                op: un_op(toks[2]).map_err(|e| fail(&e))?,
                a: reg(toks[3]).map_err(|e| fail(&e))?,
            },
            "bin" if toks.len() == 6 => Inst::Binary {
                dst: reg(toks[1]).map_err(|e| fail(&e))?,
                op: bin_op(toks[2]).map_err(|e| fail(&e))?,
                ty: ty(toks[3]).map_err(|e| fail(&e))?,
                a: reg(toks[4]).map_err(|e| fail(&e))?,
                b: reg(toks[5]).map_err(|e| fail(&e))?,
            },
            "cmp" if toks.len() == 6 => Inst::Cmp {
                dst: reg(toks[1]).map_err(|e| fail(&e))?,
                op: cmp_op(toks[2]).map_err(|e| fail(&e))?,
                ty: ty(toks[3]).map_err(|e| fail(&e))?,
                a: reg(toks[4]).map_err(|e| fail(&e))?,
                b: reg(toks[5]).map_err(|e| fail(&e))?,
            },
            "sel" if toks.len() == 5 => Inst::Select {
                dst: reg(toks[1]).map_err(|e| fail(&e))?,
                cond: reg(toks[2]).map_err(|e| fail(&e))?,
                if_true: reg(toks[3]).map_err(|e| fail(&e))?,
                if_false: reg(toks[4]).map_err(|e| fail(&e))?,
            },
            "mov" if toks.len() == 3 => Inst::Mov {
                dst: reg(toks[1]).map_err(|e| fail(&e))?,
                src: reg(toks[2]).map_err(|e| fail(&e))?,
            },
            "builtin" if toks.len() == 3 => Inst::ReadBuiltin {
                dst: reg(toks[1]).map_err(|e| fail(&e))?,
                builtin: builtin(toks[2]).map_err(|e| fail(&e))?,
            },
            "readparam" if toks.len() == 3 => Inst::ReadParam {
                dst: reg(toks[1]).map_err(|e| fail(&e))?,
                index: toks[2].parse().map_err(|_| fail("bad param index"))?,
            },
            "load" if toks.len() == 4 => Inst::Load {
                dst: reg(toks[1]).map_err(|e| fail(&e))?,
                space: space(toks[2]).map_err(|e| fail(&e))?,
                addr: reg(toks[3]).map_err(|e| fail(&e))?,
            },
            "store" if toks.len() == 4 => Inst::Store {
                space: space(toks[1]).map_err(|e| fail(&e))?,
                addr: reg(toks[2]).map_err(|e| fail(&e))?,
                value: reg(toks[3]).map_err(|e| fail(&e))?,
            },
            "atomic" if toks.len() == 6 => Inst::Atomic {
                dst: if toks[1] == "_" {
                    None
                } else {
                    Some(reg(toks[1]).map_err(|e| fail(&e))?)
                },
                space: space(toks[2]).map_err(|e| fail(&e))?,
                op: atomic_op(toks[3]).map_err(|e| fail(&e))?,
                addr: reg(toks[4]).map_err(|e| fail(&e))?,
                value: reg(toks[5]).map_err(|e| fail(&e))?,
            },
            "barrier" if toks.len() == 1 => Inst::Barrier,
            "swizzle" if toks.len() == 4 => Inst::Swizzle {
                dst: reg(toks[1]).map_err(|e| fail(&e))?,
                src: reg(toks[2]).map_err(|e| fail(&e))?,
                mode: swizzle_mode(toks[3]).map_err(|e| fail(&e))?,
            },
            "if" if toks.len() == 3 && toks[2] == "{" => {
                let cond = reg(toks[1]).map_err(|e| fail(&e))?;
                let (then_blk, close) = self.parse_block_until()?;
                if close != "} else {" {
                    return Err(self.err_prev("expected `} else {` after the then block"));
                }
                let else_blk = self.parse_block()?;
                Inst::If {
                    cond,
                    then_blk,
                    else_blk,
                }
            }
            "while" if toks.len() == 3 && toks[2] == "{" => {
                let cond_reg = reg(toks[1]).map_err(|e| fail(&e))?;
                let (cond, close) = self.parse_block_until()?;
                if close != "} body {" {
                    return Err(self.err_prev("expected `} body {` after the condition block"));
                }
                let body = self.parse_block()?;
                Inst::While {
                    cond,
                    cond_reg,
                    body,
                }
            }
            _ => return Err(fail("unknown instruction or wrong operand count")),
        };
        Ok(inst)
    }
}

fn parse_launch(rest: &str) -> Result<(u32, u32), String> {
    let mut global = None;
    let mut local = None;
    for tok in rest.split_whitespace() {
        if let Some(v) = tok.strip_prefix("global=") {
            global = Some(v.parse::<u32>().map_err(|e| format!("bad global: {e}"))?);
        } else if let Some(v) = tok.strip_prefix("local=") {
            local = Some(v.parse::<u32>().map_err(|e| format!("bad local: {e}"))?);
        } else {
            return Err(format!("unknown launch field `{tok}`"));
        }
    }
    match (global, local) {
        (Some(g), Some(l)) if l > 0 && g > 0 && g % l == 0 => Ok((g, l)),
        (Some(_), Some(_)) => Err("launch needs local > 0 dividing global > 0".into()),
        _ => Err("launch needs both global= and local=".into()),
    }
}

fn parse_param(rest: &str) -> Result<(Param, ArgSpec), String> {
    let toks: Vec<&str> = rest.split_whitespace().collect();
    match toks.as_slice() {
        [name, "buffer", words, fill] => {
            let words = words
                .strip_prefix("words=")
                .ok_or("expected words=N")?
                .parse::<u32>()
                .map_err(|e| format!("bad words: {e}"))?;
            let fill = match fill.strip_prefix("fill=").ok_or("expected fill=...")? {
                "zero" => BufferFill::Zero,
                "ramp" => BufferFill::Ramp,
                f => match f.strip_prefix("hash:") {
                    Some(salt) => BufferFill::Hash(hex32(salt)?),
                    None => return Err(format!("unknown fill `{f}`")),
                },
            };
            Ok((
                Param {
                    name: name.to_string(),
                    kind: ParamKind::Buffer,
                },
                ArgSpec::Buffer { words, fill },
            ))
        }
        [name, "scalar", t, bits] => {
            let bits = hex32(bits.strip_prefix("bits=").ok_or("expected bits=0x...")?)?;
            Ok((
                Param {
                    name: name.to_string(),
                    kind: ParamKind::Scalar(ty(t)?),
                },
                ArgSpec::Scalar { bits },
            ))
        }
        _ => Err(format!("malformed param line `{rest}`")),
    }
}

fn reg(tok: &str) -> Result<Reg, String> {
    tok.strip_prefix('%')
        .and_then(|n| n.parse::<u32>().ok())
        .map(Reg)
        .ok_or_else(|| format!("expected a register, got `{tok}`"))
}

fn hex32(tok: &str) -> Result<u32, String> {
    let digits = tok
        .strip_prefix("0x")
        .ok_or_else(|| format!("expected 0x-prefixed hex, got `{tok}`"))?;
    u32::from_str_radix(digits, 16).map_err(|e| format!("bad hex `{tok}`: {e}"))
}

fn ty(tok: &str) -> Result<Ty, String> {
    match tok {
        "i32" => Ok(Ty::I32),
        "u32" => Ok(Ty::U32),
        "f32" => Ok(Ty::F32),
        _ => Err(format!("unknown type `{tok}`")),
    }
}

fn space(tok: &str) -> Result<MemSpace, String> {
    match tok {
        "global" => Ok(MemSpace::Global),
        "local" => Ok(MemSpace::Local),
        _ => Err(format!("unknown address space `{tok}`")),
    }
}

fn bin_op(tok: &str) -> Result<BinOp, String> {
    Ok(match tok {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return Err(format!("unknown binary op `{tok}`")),
    })
}

fn un_op(tok: &str) -> Result<UnOp, String> {
    Ok(match tok {
        "not" => UnOp::Not,
        "neg" => UnOp::Neg,
        "abs" => UnOp::Abs,
        "exp" => UnOp::Exp,
        "log" => UnOp::Log,
        "sqrt" => UnOp::Sqrt,
        "rsqrt" => UnOp::Rsqrt,
        "sin" => UnOp::Sin,
        "cos" => UnOp::Cos,
        "floor" => UnOp::Floor,
        "f32_to_i32" => UnOp::F32ToI32,
        "i32_to_f32" => UnOp::I32ToF32,
        "u32_to_f32" => UnOp::U32ToF32,
        "f32_to_u32" => UnOp::F32ToU32,
        _ => return Err(format!("unknown unary op `{tok}`")),
    })
}

fn cmp_op(tok: &str) -> Result<CmpOp, String> {
    Ok(match tok {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return Err(format!("unknown compare op `{tok}`")),
    })
}

fn atomic_op(tok: &str) -> Result<AtomicOp, String> {
    Ok(match tok {
        "add" => AtomicOp::Add,
        "xchg" => AtomicOp::Exchange,
        "max" => AtomicOp::Max,
        "min" => AtomicOp::Min,
        _ => match tok.strip_prefix("cmpxchg:") {
            Some(r) => AtomicOp::CmpXchg { cmp: reg(r)? },
            None => return Err(format!("unknown atomic op `{tok}`")),
        },
    })
}

fn swizzle_mode(tok: &str) -> Result<SwizzleMode, String> {
    match tok {
        "swap_pairs" => Ok(SwizzleMode::SwapPairs),
        "dup_even" => Ok(SwizzleMode::DupEven),
        "dup_odd" => Ok(SwizzleMode::DupOdd),
        _ => Err(format!("unknown swizzle mode `{tok}`")),
    }
}

fn builtin(tok: &str) -> Result<Builtin, String> {
    let (name, dim) = tok
        .rsplit_once('.')
        .ok_or_else(|| format!("malformed builtin `{tok}`"))?;
    let d: u8 = dim
        .parse()
        .map_err(|_| format!("bad dimension in `{tok}`"))?;
    if d > 2 {
        return Err(format!("dimension out of range in `{tok}`"));
    }
    Ok(match name {
        "global_id" => Builtin::GlobalId(Dim(d)),
        "local_id" => Builtin::LocalId(Dim(d)),
        "group_id" => Builtin::GroupId(Dim(d)),
        "global_size" => Builtin::GlobalSize(Dim(d)),
        "local_size" => Builtin::LocalSize(Dim(d)),
        "num_groups" => Builtin::NumGroups(Dim(d)),
        _ => return Err(format!("unknown builtin `{tok}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::super::{generate, GenConfig};
    use super::*;

    #[test]
    fn generated_cases_round_trip() {
        let cfg = GenConfig::default();
        for seed in 0..100 {
            let case = generate(seed, &cfg);
            let text = serialize(&case);
            let back = parse(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(back, case, "seed {seed}");
            // Serialization is itself stable.
            assert_eq!(serialize(&back), text, "seed {seed}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let case = generate(3, &GenConfig::default());
        let text = serialize(&case);
        let commented = format!("# header comment\n\n{}\n# trailing\n", text);
        assert_eq!(parse(&commented).unwrap(), case);
    }

    #[test]
    fn malformed_inputs_yield_line_errors() {
        for (input, needle) in [
            ("", "expected `case ...`"),
            ("case k\nlaunch global=8\n", "launch needs both"),
            (
                "case k\nlaunch global=8 local=3\nlds 0\nnext_reg 0\nbody {\n}\n",
                "dividing",
            ),
            (
                "case k\nlaunch global=8 local=8\nlds 0\nnext_reg 0\nbody {\nfrobnicate %0\n}\n",
                "unknown instruction",
            ),
            (
                "case k\nlaunch global=8 local=8\nlds 0\nnext_reg 0\nbody {\n",
                "expected an instruction or `}`",
            ),
        ] {
            let err = parse(input).expect_err(input);
            assert!(err.contains(needle), "`{input}` gave `{err}`");
        }
    }

    #[test]
    fn errors_name_the_line_number() {
        let input = "case k\nlaunch global=8 local=8\nlds 0\nnext_reg 0\nbody {\nbogus\n}\n";
        let err = parse(input).expect_err("must fail");
        assert!(err.contains("line 6"), "{err}");
    }
}

//! Aggregation of simulator statistics across multi-pass launches.

use gcn_sim::{LaunchStats, PerfCounters, PowerStats};

/// Statistics accumulated over all passes of one benchmark run.
#[derive(Debug, Clone, Default)]
pub struct AggregateStats {
    /// Total simulated cycles across passes (kernel time, as in the
    /// paper's CodeXL kernel timings — host gaps excluded).
    pub cycles: u64,
    /// Summed counters (tick sums add; ratios are recomputed on demand).
    pub counters: PerfCounters,
    /// Runtime-weighted power (average) and max-over-passes (peak).
    pub power: Option<PowerStats>,
    /// Launch passes accumulated.
    pub passes: usize,
    /// Occupancy of the first pass (identical across passes in practice).
    pub occupancy: Option<gcn_sim::Occupancy>,
}

impl AggregateStats {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one pass's stats in.
    pub fn add(&mut self, s: &LaunchStats) {
        self.cycles += s.cycles;
        self.passes += 1;
        let c = &s.counters;
        let a = &mut self.counters;
        a.wall_ticks += c.wall_ticks;
        a.valu_busy_ticks += c.valu_busy_ticks;
        a.salu_busy_ticks += c.salu_busy_ticks;
        a.mem_unit_busy_ticks += c.mem_unit_busy_ticks;
        a.write_stall_ticks += c.write_stall_ticks;
        a.lds_busy_ticks += c.lds_busy_ticks;
        a.dyn_insts += c.dyn_insts;
        a.valu_insts += c.valu_insts;
        a.salu_insts += c.salu_insts;
        a.vmem_insts += c.vmem_insts;
        a.lds_insts += c.lds_insts;
        a.atomic_ops += c.atomic_ops;
        a.barrier_waits += c.barrier_waits;
        a.l1_transactions += c.l1_transactions;
        a.l2_transactions += c.l2_transactions;
        a.dram_transactions += c.dram_transactions;
        a.bytes_loaded += c.bytes_loaded;
        a.bytes_stored += c.bytes_stored;
        a.lds_conflicts += c.lds_conflicts;
        a.l1.read_hits += c.l1.read_hits;
        a.l1.read_misses += c.l1.read_misses;
        a.l1.write_hits += c.l1.write_hits;
        a.l1.write_misses += c.l1.write_misses;
        a.l1.evictions += c.l1.evictions;
        a.l2.read_hits += c.l2.read_hits;
        a.l2.read_misses += c.l2.read_misses;
        a.l2.write_hits += c.l2.write_hits;
        a.l2.write_misses += c.l2.write_misses;
        a.l2.evictions += c.l2.evictions;
        a.groups_executed += c.groups_executed;
        a.waves_executed += c.waves_executed;
        a.total_simds = c.total_simds;
        a.total_cus = c.total_cus;
        self.occupancy.get_or_insert(s.occupancy);

        // Power: runtime-weighted average, per-pass max for peak.
        self.power = Some(match self.power {
            None => s.power,
            Some(prev) => {
                let t1 = prev.runtime_ms;
                let t2 = s.power.runtime_ms;
                let total = t1 + t2;
                PowerStats {
                    avg_watts: (prev.avg_watts * t1 + s.power.avg_watts * t2) / total.max(1e-12),
                    peak_watts: prev.peak_watts.max(s.power.peak_watts),
                    dynamic_mj: prev.dynamic_mj + s.power.dynamic_mj,
                    runtime_ms: total,
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcn_sim::{Occupancy, PowerStats};

    fn fake(cycles: u64, avg_w: f64, ms: f64) -> LaunchStats {
        LaunchStats {
            cycles,
            counters: PerfCounters {
                wall_ticks: cycles * 16,
                valu_busy_ticks: cycles,
                total_simds: 8,
                total_cus: 2,
                ..Default::default()
            },
            power: PowerStats {
                avg_watts: avg_w,
                peak_watts: avg_w + 5.0,
                dynamic_mj: 1.0,
                runtime_ms: ms,
            },
            occupancy: Occupancy {
                vgprs_per_wave: 10,
                waves_per_group: 1,
                groups_per_cu: 4,
                waves_per_cu: 4,
                limiter: gcn_sim::OccupancyLimiter::WaveSlots,
            },
            faults_applied: 0,
        }
    }

    #[test]
    fn aggregation_sums_and_weights() {
        let mut a = AggregateStats::new();
        a.add(&fake(100, 50.0, 1.0));
        a.add(&fake(300, 70.0, 3.0));
        assert_eq!(a.cycles, 400);
        assert_eq!(a.passes, 2);
        let p = a.power.unwrap();
        assert!((p.avg_watts - 65.0).abs() < 1e-9, "runtime-weighted avg");
        assert!((p.peak_watts - 75.0).abs() < 1e-9);
        assert!((p.runtime_ms - 4.0).abs() < 1e-12);
        assert_eq!(a.counters.wall_ticks, 6400);
    }
}

//! NBody (NB) — all-pairs gravitational interaction. Strongly ALU-bound
//! (rsqrt chains) and deliberately small: with 512 bodies and 64-wide
//! groups only 8 work-groups launch, under-utilizing the 12-CU device —
//! which is why NB is one of the paper's cheapest Inter-Group kernels
//! (1.16×, Section 7.4).
//!
//! Buffers: `[0]` positions (x‖y‖z planes, 3n f32), `[1]` velocities
//! (same layout), `[2]` new positions, `[3]` new velocities.

use crate::util::{check_f32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder, Ty};

/// See module docs.
pub struct NBody;

const DT: f32 = 0.005;
const EPS2: f32 = 50.0;

fn n_bodies(scale: Scale) -> usize {
    match scale {
        Scale::Small => 128,
        Scale::Paper => 1024,
        Scale::Large => 2048,
    }
}

fn make_inputs(scale: Scale) -> (Vec<f32>, Vec<f32>) {
    let n = n_bodies(scale);
    let mut rng = Xorshift::new(0x2B0D_1E50);
    let pos: Vec<f32> = (0..3 * n).map(|_| rng.range_f32(-100.0, 100.0)).collect();
    let vel: Vec<f32> = (0..3 * n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    (pos, vel)
}

/// CPU step mirroring the kernel's operation order exactly.
fn cpu_step(pos: &[f32], vel: &[f32], n: usize) -> (Vec<f32>, Vec<f32>) {
    let mut npos = vec![0.0f32; 3 * n];
    let mut nvel = vec![0.0f32; 3 * n];
    for i in 0..n {
        let (xi, yi, zi) = (pos[i], pos[n + i], pos[2 * n + i]);
        let (mut ax, mut ay, mut az) = (0.0f32, 0.0f32, 0.0f32);
        for j in 0..n {
            let dx = pos[j] - xi;
            let dy = pos[n + j] - yi;
            let dz = pos[2 * n + j] - zi;
            let r2 = dx * dx + dy * dy + dz * dz + EPS2;
            let inv = 1.0 / r2.sqrt();
            let inv3 = inv * inv * inv;
            ax += dx * inv3;
            ay += dy * inv3;
            az += dz * inv3;
        }
        let vx = vel[i] + ax * DT;
        let vy = vel[n + i] + ay * DT;
        let vz = vel[2 * n + i] + az * DT;
        nvel[i] = vx;
        nvel[n + i] = vy;
        nvel[2 * n + i] = vz;
        npos[i] = xi + vx * DT;
        npos[n + i] = yi + vy * DT;
        npos[2 * n + i] = zi + vz * DT;
    }
    (npos, nvel)
}

impl Benchmark for NBody {
    fn name(&self) -> &'static str {
        "NBody"
    }

    fn abbrev(&self) -> &'static str {
        "NB"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("nbody_step");
        let pos = b.buffer_param("pos");
        let vel = b.buffer_param("vel");
        let npos = b.buffer_param("npos");
        let nvel = b.buffer_param("nvel");
        let n = b.scalar_param("n", Ty::U32);
        let i = b.global_id(0);
        let zero = b.const_u32(0);
        let _one = b.const_u32(1);
        let two_n = b.add_u32(n, n);

        let iy = b.add_u32(n, i);
        let iz = b.add_u32(two_n, i);
        let load_at = |b: &mut KernelBuilder, buf, idx| {
            let a = b.elem_addr(buf, idx);
            b.load_global(a)
        };
        let xi = load_at(&mut b, pos, i);
        let yi = load_at(&mut b, pos, iy);
        let zi = load_at(&mut b, pos, iz);

        let fzero = b.const_f32(0.0);
        let ax = b.fresh();
        let ay = b.fresh();
        let az = b.fresh();
        b.mov_to(ax, fzero);
        b.mov_to(ay, fzero);
        b.mov_to(az, fzero);
        let eps2 = b.const_f32(EPS2);

        // The inner loop is unrolled 4× (the SDK kernel is float4-
        // vectorized and unrolled the same way): VALU throughput, not loop
        // latency, is the bottleneck, matching the paper's NBody profile.
        let j = b.fresh();
        b.mov_to(j, zero);
        let four_u = b.const_u32(4);
        b.while_(
            |b| b.lt_u32(j, n),
            |b| {
                for u in 0..4u32 {
                    let uc = b.const_u32(u);
                    let ju = b.add_u32(j, uc);
                    let jy = b.add_u32(n, ju);
                    let jz = b.add_u32(two_n, ju);
                    let xj = load_at(b, pos, ju);
                    let yj = load_at(b, pos, jy);
                    let zj = load_at(b, pos, jz);
                    let dx = b.sub_f32(xj, xi);
                    let dy = b.sub_f32(yj, yi);
                    let dz = b.sub_f32(zj, zi);
                    let dx2 = b.mul_f32(dx, dx);
                    let dy2 = b.mul_f32(dy, dy);
                    let dz2 = b.mul_f32(dz, dz);
                    let s1 = b.add_f32(dx2, dy2);
                    let s2 = b.add_f32(s1, dz2);
                    let r2 = b.add_f32(s2, eps2);
                    let inv = b.rsqrt_f32(r2);
                    let inv2 = b.mul_f32(inv, inv);
                    let inv3 = b.mul_f32(inv2, inv);
                    let tx = b.mul_f32(dx, inv3);
                    let ty = b.mul_f32(dy, inv3);
                    let tz = b.mul_f32(dz, inv3);
                    let nx = b.add_f32(ax, tx);
                    let ny = b.add_f32(ay, ty);
                    let nz = b.add_f32(az, tz);
                    b.mov_to(ax, nx);
                    b.mov_to(ay, ny);
                    b.mov_to(az, nz);
                }
                let jn = b.add_u32(j, four_u);
                b.mov_to(j, jn);
            },
        );

        let dt = b.const_f32(DT);
        let store_at = |b: &mut KernelBuilder, buf, idx, v| {
            let a = b.elem_addr(buf, idx);
            b.store_global(a, v);
        };
        let vx0 = load_at(&mut b, vel, i);
        let vy0 = load_at(&mut b, vel, iy);
        let vz0 = load_at(&mut b, vel, iz);
        let dvx = b.mul_f32(ax, dt);
        let dvy = b.mul_f32(ay, dt);
        let dvz = b.mul_f32(az, dt);
        let vx = b.add_f32(vx0, dvx);
        let vy = b.add_f32(vy0, dvy);
        let vz = b.add_f32(vz0, dvz);
        store_at(&mut b, nvel, i, vx);
        store_at(&mut b, nvel, iy, vy);
        store_at(&mut b, nvel, iz, vz);
        let dpx = b.mul_f32(vx, dt);
        let dpy = b.mul_f32(vy, dt);
        let dpz = b.mul_f32(vz, dt);
        let px = b.add_f32(xi, dpx);
        let py = b.add_f32(yi, dpy);
        let pz = b.add_f32(zi, dpz);
        store_at(&mut b, npos, i, px);
        store_at(&mut b, npos, iy, py);
        store_at(&mut b, npos, iz, pz);
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let n = n_bodies(scale);
        let (pos, vel) = make_inputs(scale);
        let pb = dev.create_buffer((3 * n * 4) as u32);
        let vb = dev.create_buffer((3 * n * 4) as u32);
        let npb = dev.create_buffer((3 * n * 4) as u32);
        let nvb = dev.create_buffer((3 * n * 4) as u32);
        dev.write_f32s(pb, &pos);
        dev.write_f32s(vb, &vel);
        Plan {
            passes: vec![LaunchConfig::new_1d(n, 64)
                .arg(Arg::Buffer(pb))
                .arg(Arg::Buffer(vb))
                .arg(Arg::Buffer(npb))
                .arg(Arg::Buffer(nvb))
                .arg(Arg::U32(n as u32))],
            buffers: vec![pb, vb, npb, nvb],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let n = n_bodies(scale);
        let (pos, vel) = make_inputs(scale);
        let (want_pos, want_vel) = cpu_step(&pos, &vel, n);
        check_f32s(&dev.read_f32s(plan.buffers[2]), &want_pos, 1e-3)?;
        check_f32s(&dev.read_f32s(plan.buffers[3]), &want_vel, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_steps() {
        run_original(&NBody, Scale::Small, &DeviceConfig::small_test(), &|c| c).unwrap();
    }

    #[test]
    fn rmt_steps() {
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(&NBody, Scale::Small, &DeviceConfig::small_test(), &opts).unwrap();
            assert_eq!(r.detections, 0);
        }
    }

    #[test]
    fn momentum_roughly_conserved() {
        // Pairwise symmetric forces: total velocity change ≈ 0.
        let n = 32;
        let (pos, vel) = make_inputs(Scale::Small);
        let (_, nvel) = cpu_step(&pos[..3 * n], &vel[..3 * n], n);
        let before: f32 = vel[..n].iter().sum();
        let after: f32 = nvel[..n].iter().sum();
        assert!((before - after).abs() < 1e-2, "{before} vs {after}");
    }
}

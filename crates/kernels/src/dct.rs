//! DCT — 8×8 two-dimensional discrete cosine transform per work-group,
//! staged through the LDS (`out = T · X · Tᵀ`). ALU-heavy (cosines are
//! computed in-kernel) with LDS traffic: under RMT both the redundant
//! compute and the doubled LDS hurt (Figures 2/4).
//!
//! Buffers: `[0]` input image (f32), `[1]` DCT coefficients (f32).

use crate::util::{check_f32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder, Reg, Ty};

/// See module docs.
pub struct Dct;

const B: usize = 8; // block edge
const PI: f32 = std::f32::consts::PI;

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Small => (32, 16),
        Scale::Paper => (128, 64),
        Scale::Large => (256, 128),
    }
}

fn make_input(scale: Scale) -> Vec<f32> {
    let (w, h) = dims(scale);
    let mut rng = Xorshift::new(0xDC7_0001);
    (0..w * h).map(|_| rng.range_f32(-128.0, 128.0)).collect()
}

/// DCT basis entry T[i][k] = a(i) · cos((2k+1)·i·π/16).
fn t_entry(i: usize, k: usize) -> f32 {
    let a = if i == 0 { (1.0f32 / 8.0).sqrt() } else { 0.5 };
    a * ((2 * k + 1) as f32 * i as f32 * PI / 16.0).cos()
}

fn cpu_dct(input: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    for by in (0..h).step_by(B) {
        for bx in (0..w).step_by(B) {
            // temp = T · X
            let mut temp = [[0.0f32; B]; B];
            for (i, row) in temp.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for k in 0..B {
                        acc += t_entry(i, k) * input[(by + k) * w + bx + j];
                    }
                    *cell = acc;
                }
            }
            // out = temp · Tᵀ
            for (i, row) in temp.iter().enumerate() {
                for j in 0..B {
                    let mut acc = 0.0f32;
                    for (k, &tv) in row.iter().enumerate() {
                        acc += tv * t_entry(j, k);
                    }
                    out[(by + i) * w + bx + j] = acc;
                }
            }
        }
    }
    out
}

impl Benchmark for Dct {
    fn name(&self) -> &'static str {
        "DCT"
    }

    fn abbrev(&self) -> &'static str {
        "DCT"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("dct8x8");
        // block[64] + temp[64] f32 in LDS.
        b.set_lds_bytes((2 * B * B * 4) as u32);
        let inp = b.buffer_param("in");
        let out = b.buffer_param("out");
        let w = b.scalar_param("w", Ty::U32);

        let gx = b.global_id(0);
        let gy = b.global_id(1);
        let lx = b.local_id(0);
        let ly = b.local_id(1);
        let four = b.const_u32(4);
        let eight = b.const_u32(B as u32);
        let temp_base = b.const_u32((B * B * 4) as u32);

        // Load my pixel into block[ly][lx].
        let grow = b.mul_u32(gy, w);
        let gidx = b.add_u32(grow, gx);
        let ga = b.elem_addr(inp, gidx);
        let v = b.load_global(ga);
        let lrow = b.mul_u32(ly, eight);
        let lidx = b.add_u32(lrow, lx);
        let loff = b.mul_u32(lidx, four);
        b.store_local(loff, v);
        b.barrier();

        // T[i][k] with runtime row index i: a(i) * cos((2k+1) i π/16).
        let t_coef = |b: &mut KernelBuilder, i: Reg, k: usize| -> Reg {
            let fi = b.u32_to_f32(i);
            let ang_c = b.const_f32((2 * k + 1) as f32 * PI / 16.0);
            let ang = b.mul_f32(fi, ang_c);
            let c = b.cos_f32(ang);
            let zero = b.const_u32(0);
            let is0 = b.eq_u32(i, zero);
            let a0 = b.const_f32((1.0f32 / 8.0).sqrt());
            let a1 = b.const_f32(0.5);
            let a = b.select(is0, a0, a1);
            b.mul_f32(a, c)
        };

        // Stage 1: temp[ly][lx] = Σ_k T[ly][k] · block[k][lx]
        let fzero = b.const_f32(0.0);
        let acc = b.fresh();
        b.mov_to(acc, fzero);
        for k in 0..B {
            let kc = b.const_u32(k as u32);
            let krow = b.mul_u32(kc, eight);
            let bi = b.add_u32(krow, lx);
            let bo = b.mul_u32(bi, four);
            let x = b.load_local(bo);
            let t = t_coef(&mut b, ly, k);
            let p = b.mul_f32(t, x);
            let s = b.add_f32(acc, p);
            b.mov_to(acc, s);
        }
        let toff = b.add_u32(temp_base, loff);
        b.store_local(toff, acc);
        b.barrier();

        // Stage 2: out[ly][lx] = Σ_k temp[ly][k] · T[lx][k]
        let acc2 = b.fresh();
        b.mov_to(acc2, fzero);
        for k in 0..B {
            let kc = b.const_u32(k as u32);
            let ti = b.add_u32(lrow, kc);
            let to4 = b.mul_u32(ti, four);
            let to = b.add_u32(temp_base, to4);
            let x = b.load_local(to);
            let t = t_coef(&mut b, lx, k);
            let p = b.mul_f32(t, x);
            let s = b.add_f32(acc2, p);
            b.mov_to(acc2, s);
        }
        let oa = b.elem_addr(out, gidx);
        b.store_global(oa, acc2);
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let (w, h) = dims(scale);
        let input = make_input(scale);
        let ib = dev.create_buffer((w * h * 4) as u32);
        let ob = dev.create_buffer((w * h * 4) as u32);
        dev.write_f32s(ib, &input);
        Plan {
            passes: vec![LaunchConfig::new([w, h, 1], [B, B, 1])
                .arg(Arg::Buffer(ib))
                .arg(Arg::Buffer(ob))
                .arg(Arg::U32(w as u32))],
            buffers: vec![ib, ob],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let (w, h) = dims(scale);
        let want = cpu_dct(&make_input(scale), w, h);
        check_f32s(&dev.read_f32s(plan.buffers[1]), &want, 2e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_transforms() {
        run_original(&Dct, Scale::Small, &DeviceConfig::small_test(), &|c| c).unwrap();
    }

    #[test]
    fn rmt_transforms() {
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(&Dct, Scale::Small, &DeviceConfig::small_test(), &opts).unwrap();
            assert_eq!(r.detections, 0);
        }
    }

    #[test]
    fn dct_of_constant_block_concentrates_dc() {
        // A flat 8x8 block transforms to a single DC coefficient.
        let img = vec![8.0f32; 64];
        let out = cpu_dct(&img, 8, 8);
        assert!(
            (out[0] - 64.0).abs() < 1e-3,
            "DC = 8 * 8 = 64, got {}",
            out[0]
        );
        assert!(out[1..].iter().all(|&v| v.abs() < 1e-3));
    }
}

//! BinarySearch (BinS) — every work-item binary-searches a sorted array
//! for its key. Memory-latency-bound with data-dependent branching; most
//! work-items write at most one word (the "ghost" behaviour Section 7.4
//! credits for BinS's low Inter-Group overhead).
//!
//! Buffers: `[0]` sorted array, `[1]` keys, `[2]` result indices
//! (`u32::MAX` when absent).

use crate::util::{check_u32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder, Ty};

/// See module docs.
pub struct BinarySearch;

fn sizes(scale: Scale) -> (usize, usize) {
    // (array length, number of keys)
    match scale {
        Scale::Small => (4096, 2048),
        Scale::Paper => (262144, 98304),
        Scale::Large => (1048576, 393216),
    }
}

fn make_inputs(scale: Scale) -> (Vec<u32>, Vec<u32>) {
    let (len, nkeys) = sizes(scale);
    let mut rng = Xorshift::new(0xB15E_ACC0);
    let mut arr = Vec::with_capacity(len);
    let mut acc = 0u32;
    for _ in 0..len {
        acc = acc.wrapping_add(rng.below(3)); // non-decreasing, duplicates
        arr.push(acc);
    }
    let max = acc + 2;
    let keys = (0..nkeys).map(|_| rng.below(max)).collect();
    (arr, keys)
}

impl Benchmark for BinarySearch {
    fn name(&self) -> &'static str {
        "BinarySearch"
    }

    fn abbrev(&self) -> &'static str {
        "BinS"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("binary_search");
        let arr = b.buffer_param("sorted");
        let keys = b.buffer_param("keys");
        let out = b.buffer_param("found");
        let len = b.scalar_param("len", Ty::U32);
        let gid = b.global_id(0);
        let ka = b.elem_addr(keys, gid);
        let key = b.load_global(ka);

        let zero = b.const_u32(0);
        let one = b.const_u32(1);
        let lo = b.fresh();
        b.mov_to(lo, zero);
        let hi = b.fresh();
        b.mov_to(hi, len);
        // lower_bound: while lo < hi { mid; arr[mid] < key ? lo=mid+1 : hi=mid }
        b.while_(
            |b| b.lt_u32(lo, hi),
            |b| {
                let sum = b.add_u32(lo, hi);
                let mid = b.shr_u32(sum, one);
                let ma = b.elem_addr(arr, mid);
                let v = b.load_global(ma);
                let less = b.lt_u32(v, key);
                let midp1 = b.add_u32(mid, one);
                let new_lo = b.select(less, midp1, lo);
                let new_hi = b.select(less, hi, mid);
                b.mov_to(lo, new_lo);
                b.mov_to(hi, new_hi);
            },
        );
        // found = lo < len && arr[lo] == key (guard the probe address).
        let lenm1 = b.sub_u32(len, one);
        let probe_idx = b.min_u32(lo, lenm1);
        let pa = b.elem_addr(arr, probe_idx);
        let pv = b.load_global(pa);
        let in_range = b.lt_u32(lo, len);
        let eq = b.eq_u32(pv, key);
        let found = b.and_u32(in_range, eq);
        let miss = b.const_u32(u32::MAX);
        let res = b.select(found, lo, miss);
        let oa = b.elem_addr(out, gid);
        b.store_global(oa, res);
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let (len, nkeys) = sizes(scale);
        let (arr, keys) = make_inputs(scale);
        let ab = dev.create_buffer((len * 4) as u32);
        let kb = dev.create_buffer((nkeys * 4) as u32);
        let ob = dev.create_buffer((nkeys * 4) as u32);
        dev.write_u32s(ab, &arr);
        dev.write_u32s(kb, &keys);
        Plan {
            passes: vec![LaunchConfig::new_1d(nkeys, 64)
                .arg(Arg::Buffer(ab))
                .arg(Arg::Buffer(kb))
                .arg(Arg::Buffer(ob))
                .arg(Arg::U32(len as u32))],
            buffers: vec![ab, kb, ob],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let (arr, keys) = make_inputs(scale);
        let want: Vec<u32> = keys
            .iter()
            .map(|&k| {
                let lb = arr.partition_point(|&v| v < k);
                if lb < arr.len() && arr[lb] == k {
                    lb as u32
                } else {
                    u32::MAX
                }
            })
            .collect();
        let got = dev.read_u32s(plan.buffers[2]);
        check_u32s(&got, &want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_verifies() {
        run_original(
            &BinarySearch,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_flavors_verify() {
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(
                &BinarySearch,
                Scale::Small,
                &DeviceConfig::small_test(),
                &opts,
            )
            .unwrap();
            assert_eq!(r.detections, 0);
        }
    }
}

//! # rmt-kernels
//!
//! The 16 kernels from the AMD OpenCL SDK sample suite used in the ISCA
//! 2014 GPU RMT evaluation (paper Section 5), re-implemented in [`rmt_ir`]
//! with deterministic input generators and CPU reference checkers:
//!
//! | abbrev | benchmark            | character (drives the figures)      |
//! |--------|----------------------|-------------------------------------|
//! | BinS   | BinarySearch         | memory-latency-bound, sparse writes |
//! | BO     | BinomialOption       | LDS/barrier-bound                   |
//! | BitS   | BitonicSort          | memory-bound, write-heavy, multi-pass|
//! | BlkSch | BlackScholes         | ALU/transcendental-bound            |
//! | DCT    | 8×8 DCT              | ALU + LDS, 2-D                      |
//! | DWT    | DwtHaar1D            | LDS + memory, multi-level           |
//! | FWT    | FastWalshTransform   | memory-bound butterfly, multi-pass  |
//! | FW     | FloydWarshall        | memory-bound, multi-pass            |
//! | MM     | MatrixMultiplication | ALU + LDS tiles, 2-D                |
//! | NB     | NBody                | ALU-bound, CU-under-utilizing       |
//! | PS     | PrefixSum            | LDS/barrier-bound, single group     |
//! | QRS    | QuasiRandomSequence  | integer-ALU-bound                   |
//! | R      | Reduction            | memory-read-bound, tiny writes      |
//! | SC     | SimpleConvolution    | neighbourhood reads, cache-friendly |
//! | SF     | SobelFilter          | memory-bound 2-D stencil            |
//! | URNG   | UniformRandomNoise   | integer-ALU-bound image op          |
//!
//! Every benchmark implements [`Benchmark`]: it supplies one kernel, a
//! [`Plan`] (buffers + one or more launch passes — BitonicSort, Floyd-
//! Warshall and FastWalshTransform are genuinely multi-pass), and a CPU
//! verifier — the paper's "built-in verification capabilities".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary_search;
mod binomial_option;
mod bitonic_sort;
mod black_scholes;
mod convolution;
mod dct;
mod dwt_haar;
mod fast_walsh;
mod floyd_warshall;
mod matmul;
mod nbody;
mod prefix_sum;
mod quasi_random;
mod reduction;
mod sobel;
mod stats;
mod suite;
mod urng;
pub mod util;

pub use stats::AggregateStats;
pub use suite::{
    all, by_abbrev, run_duplicated, run_original, run_original_profiled, run_rmt, run_rmt_profiled,
    RunOutcome, SuiteError,
};

use gcn_sim::{BufferId, Device, LaunchConfig};
use rmt_ir::Kernel;

/// Problem sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny inputs for unit tests (debug-build friendly).
    Small,
    /// Inputs sized like the paper's evaluation relative to the 12-CU
    /// device: enough work-groups to saturate the CUs (Section 5), sized
    /// to keep full-suite simulation tractable.
    Paper,
    /// Larger inputs for longer-running studies (e.g. power, Figure 5).
    Large,
}

/// A prepared run: device buffers plus the ordered launch passes.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Launches to execute in order (multi-pass algorithms have several).
    pub passes: Vec<LaunchConfig>,
    /// Buffers allocated by `plan` (meaning is benchmark-specific and
    /// documented per module; used by `verify`).
    pub buffers: Vec<BufferId>,
}

/// One benchmark from the AMD SDK sample suite.
///
/// `Send + Sync` so boxed registry entries can be shared with the worker
/// threads of `gcn_sim::pool` (every implementation is a stateless unit
/// struct; all run state lives in the per-run [`Device`]).
pub trait Benchmark: Send + Sync {
    /// Full benchmark name (e.g. `"BinarySearch"`).
    fn name(&self) -> &'static str;
    /// The paper's abbreviation (e.g. `"BinS"`).
    fn abbrev(&self) -> &'static str;
    /// Builds the kernel (scale-independent; sizes arrive as arguments).
    fn kernel(&self) -> Kernel;
    /// Allocates buffers, writes deterministic inputs, and lays out the
    /// launch passes on the given device.
    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan;
    /// Checks device results against a CPU reference.
    ///
    /// # Errors
    ///
    /// A human-readable mismatch description.
    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String>;
}

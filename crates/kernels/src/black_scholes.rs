//! BlackScholes (BlkSch) — European option pricing. Heavy on transcendental
//! vector ALU work (exp/log/sqrt and the Abramowitz–Stegun CND polynomial)
//! with one load and two stores per item: the paper's canonical
//! compute-bound kernel (≈2× under every full RMT flavor).
//!
//! Buffers: `[0]` uniform randoms, `[1]` call prices, `[2]` put prices.

use crate::util::{check_f32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder, Reg};

/// See module docs.
pub struct BlackScholes;

fn n_options(scale: Scale) -> usize {
    match scale {
        Scale::Small => 1024,
        Scale::Paper => 32768,
        Scale::Large => 131072,
    }
}

fn make_input(scale: Scale) -> Vec<f32> {
    let mut rng = Xorshift::new(0xB1AC_5C01);
    (0..n_options(scale)).map(|_| rng.next_f32()).collect()
}

const A1: f32 = 0.319_381_54;
const A2: f32 = -0.356_563_78;
const A3: f32 = 1.781_477_9;
const A4: f32 = -1.821_255_9;
const A5: f32 = 1.330_274_5;
const INV_SQRT_2PI: f32 = 0.398_942_3;

/// CPU reference mirroring the kernel's f32 operation order.
fn cpu_price(r: f32) -> (f32, f32) {
    let s = 10.0 + 90.0 * r;
    let k = 10.0 + 90.0 * r;
    let t = 1.0 + 9.0 * r;
    let rf = 0.01 + 0.09 * r;
    let v = 0.01 + 0.09 * r;

    let cnd = |d: f32| -> f32 {
        let l = d.abs();
        let kk = 1.0 / (1.0 + 0.2316419 * l);
        let poly = kk * (A1 + kk * (A2 + kk * (A3 + kk * (A4 + kk * A5))));
        let w = 1.0 - INV_SQRT_2PI * (-l * l / 2.0).exp() * poly;
        if d < 0.0 {
            1.0 - w
        } else {
            w
        }
    };
    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (rf + v * v / 2.0) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let kexp = k * (-rf * t).exp();
    let call = s * cnd(d1) - kexp * cnd(d2);
    let put = kexp * (1.0 - cnd(d2)) - s * (1.0 - cnd(d1));
    (call, put)
}

impl Benchmark for BlackScholes {
    fn name(&self) -> &'static str {
        "BlackScholes"
    }

    fn abbrev(&self) -> &'static str {
        "BlkSch"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("black_scholes");
        let rand = b.buffer_param("rand");
        let call_out = b.buffer_param("call");
        let put_out = b.buffer_param("put");
        let gid = b.global_id(0);
        let ra = b.elem_addr(rand, gid);
        let r = b.load_global(ra);

        let c10 = b.const_f32(10.0);
        let c90 = b.const_f32(90.0);
        let c1 = b.const_f32(1.0);
        let c9 = b.const_f32(9.0);
        let c001 = b.const_f32(0.01);
        let c009 = b.const_f32(0.09);
        let half = b.const_f32(0.5);

        let scale = |b: &mut KernelBuilder, base: Reg, m: Reg| {
            let t = b.mul_f32(m, r);
            b.add_f32(base, t)
        };
        let s = scale(&mut b, c10, c90);
        let k = scale(&mut b, c10, c90);
        let t = scale(&mut b, c1, c9);
        let rf = scale(&mut b, c001, c009);
        let v = scale(&mut b, c001, c009);

        // Abramowitz–Stegun cumulative normal distribution.
        let cnd = |b: &mut KernelBuilder, d: Reg| -> Reg {
            let l = b.abs_f32(d);
            let c2316 = b.const_f32(0.2316419);
            let one = b.const_f32(1.0);
            let lk = b.mul_f32(c2316, l);
            let denom = b.add_f32(one, lk);
            let kk = b.div_f32(one, denom);
            let a1 = b.const_f32(A1);
            let a2 = b.const_f32(A2);
            let a3 = b.const_f32(A3);
            let a4 = b.const_f32(A4);
            let a5 = b.const_f32(A5);
            let p4 = b.mul_f32(kk, a5);
            let p4 = b.add_f32(a4, p4);
            let p3 = b.mul_f32(kk, p4);
            let p3 = b.add_f32(a3, p3);
            let p2 = b.mul_f32(kk, p3);
            let p2 = b.add_f32(a2, p2);
            let p1 = b.mul_f32(kk, p2);
            let p1 = b.add_f32(a1, p1);
            let poly = b.mul_f32(kk, p1);
            let l2 = b.mul_f32(l, l);
            let halfc = b.const_f32(0.5);
            let hl2 = b.mul_f32(l2, halfc);
            let zero = b.const_f32(0.0);
            let nhl2 = b.sub_f32(zero, hl2);
            let e = b.exp_f32(nhl2);
            let isq = b.const_f32(INV_SQRT_2PI);
            let m = b.mul_f32(isq, e);
            let mp = b.mul_f32(m, poly);
            let w = b.sub_f32(one, mp);
            let neg = b.lt_f32(d, zero);
            let om_w = b.sub_f32(one, w);
            b.select(neg, om_w, w)
        };

        let sqrt_t = b.sqrt_f32(t);
        let sok = b.div_f32(s, k);
        let lsok = b.log_f32(sok);
        let v2 = b.mul_f32(v, v);
        let hv2 = b.mul_f32(v2, half);
        let drift = b.add_f32(rf, hv2);
        let dt = b.mul_f32(drift, t);
        let num = b.add_f32(lsok, dt);
        let vst = b.mul_f32(v, sqrt_t);
        let d1 = b.div_f32(num, vst);
        let d2 = b.sub_f32(d1, vst);

        let nd1 = cnd(&mut b, d1);
        let nd2 = cnd(&mut b, d2);
        let zero = b.const_f32(0.0);
        let nrt = b.mul_f32(rf, t);
        let nnrt = b.sub_f32(zero, nrt);
        let disc = b.exp_f32(nnrt);
        let kexp = b.mul_f32(k, disc);

        let snd1 = b.mul_f32(s, nd1);
        let knd2 = b.mul_f32(kexp, nd2);
        let call = b.sub_f32(snd1, knd2);
        let one = b.const_f32(1.0);
        let om2 = b.sub_f32(one, nd2);
        let om1 = b.sub_f32(one, nd1);
        let kom2 = b.mul_f32(kexp, om2);
        let som1 = b.mul_f32(s, om1);
        let put = b.sub_f32(kom2, som1);

        let ca = b.elem_addr(call_out, gid);
        let pa = b.elem_addr(put_out, gid);
        b.store_global(ca, call);
        b.store_global(pa, put);
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let n = n_options(scale);
        let input = make_input(scale);
        let rb = dev.create_buffer((n * 4) as u32);
        let cb = dev.create_buffer((n * 4) as u32);
        let pb = dev.create_buffer((n * 4) as u32);
        dev.write_f32s(rb, &input);
        Plan {
            passes: vec![LaunchConfig::new_1d(n, 64)
                .arg(Arg::Buffer(rb))
                .arg(Arg::Buffer(cb))
                .arg(Arg::Buffer(pb))],
            buffers: vec![rb, cb, pb],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let input = make_input(scale);
        let (want_call, want_put): (Vec<f32>, Vec<f32>) =
            input.iter().map(|&r| cpu_price(r)).unzip();
        check_f32s(&dev.read_f32s(plan.buffers[1]), &want_call, 1e-3)?;
        check_f32s(&dev.read_f32s(plan.buffers[2]), &want_put, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_prices_options() {
        run_original(
            &BlackScholes,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_prices_options() {
        for opts in [
            TransformOptions::intra_plus_lds().with_swizzle(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(
                &BlackScholes,
                Scale::Small,
                &DeviceConfig::small_test(),
                &opts,
            )
            .unwrap();
            assert_eq!(r.detections, 0);
        }
    }

    #[test]
    fn cpu_reference_sane() {
        let (c, p) = cpu_price(0.5);
        assert!(c > 0.0 && c.is_finite());
        assert!(p >= 0.0 && p.is_finite());
    }
}

//! DwtHaar1D (DWT) — per-work-group multi-level 1-D Haar wavelet
//! decomposition staged through ping-pong LDS regions. Memory-bound at the
//! window loads but with heavy LDS traffic and barriers per level; in the
//! paper its communication and group-doubling costs dominate (Figure 4)
//! and it blows up under Inter-Group (Figure 6).
//!
//! Buffers: `[0]` signal, `[1]` coefficients in standard DWT layout
//! (per 128-sample window: `[approx, d_1, d_2(2), d_3(4), …, d_7(64)]`).

use crate::util::{check_f32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder};

/// See module docs.
pub struct DwtHaar1d;

const WINDOW: usize = 128; // samples per work-group (local 64, 2 each)
const INV_SQRT2: f32 = std::f32::consts::FRAC_1_SQRT_2;

fn n_samples(scale: Scale) -> usize {
    match scale {
        Scale::Small => 1024,
        Scale::Paper => 32768,
        Scale::Large => 131072,
    }
}

fn make_input(scale: Scale) -> Vec<f32> {
    let mut rng = Xorshift::new(0xD3_7AA2);
    (0..n_samples(scale))
        .map(|_| rng.range_f32(-10.0, 10.0))
        .collect()
}

fn cpu_dwt_window(window: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; window.len()];
    let mut cur = window.to_vec();
    while cur.len() > 1 {
        let half = cur.len() / 2;
        let mut next = vec![0.0f32; half];
        for i in 0..half {
            let a = cur[2 * i];
            let b = cur[2 * i + 1];
            next[i] = (a + b) * INV_SQRT2;
            out[half + i] = (a - b) * INV_SQRT2;
        }
        cur = next;
    }
    out[0] = cur[0];
    out
}

impl Benchmark for DwtHaar1d {
    fn name(&self) -> &'static str {
        "DwtHaar1D"
    }

    fn abbrev(&self) -> &'static str {
        "DWT"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("dwt_haar1d");
        // Two ping-pong regions of 128 f32 each.
        b.set_lds_bytes((2 * WINDOW * 4) as u32);
        let inp = b.buffer_param("signal");
        let out = b.buffer_param("coeffs");
        let lid = b.local_id(0);
        let grp = b.group_id(0);
        let zero = b.const_u32(0);
        let one = b.const_u32(1);
        let two = b.const_u32(2);
        let four = b.const_u32(4);
        let win = b.const_u32(WINDOW as u32);
        let ping = b.const_u32(0);
        let pong = b.const_u32((WINDOW * 4) as u32);
        let isq = b.const_f32(INV_SQRT2);

        // Load my two samples into the ping region.
        let wbase = b.mul_u32(grp, win);
        let s0 = b.mul_u32(lid, two);
        let s1 = b.add_u32(s0, one);
        let g0 = b.add_u32(wbase, s0);
        let g1 = b.add_u32(wbase, s1);
        let ga0 = b.elem_addr(inp, g0);
        let ga1 = b.elem_addr(inp, g1);
        let v0 = b.load_global(ga0);
        let v1 = b.load_global(ga1);
        let lo0 = b.mul_u32(s0, four);
        let lo1 = b.mul_u32(s1, four);
        b.store_local(lo0, v0);
        b.store_local(lo1, v1);

        // Level loop with ping-pong bases.
        let cur = b.fresh();
        b.mov_to(cur, win);
        let src = b.fresh();
        b.mov_to(src, ping);
        let dst = b.fresh();
        b.mov_to(dst, pong);
        b.while_(
            |b| b.gt_u32(cur, one),
            |b| {
                let half = b.shr_u32(cur, one);
                b.barrier();
                let active = b.lt_u32(lid, half);
                b.if_(active, |b| {
                    let i0 = b.mul_u32(lid, two);
                    let i1 = b.add_u32(i0, one);
                    let o0b = b.mul_u32(i0, four);
                    let o1b = b.mul_u32(i1, four);
                    let sa = b.add_u32(src, o0b);
                    let sb = b.add_u32(src, o1b);
                    let a = b.load_local(sa);
                    let v = b.load_local(sb);
                    let sum = b.add_f32(a, v);
                    let diff = b.sub_f32(a, v);
                    let approx = b.mul_f32(sum, isq);
                    let detail = b.mul_f32(diff, isq);
                    let dob = b.mul_u32(lid, four);
                    let da = b.add_u32(dst, dob);
                    b.store_local(da, approx);
                    // Detail coefficient straight to global memory at
                    // out[window_base + half + lid].
                    let pos0 = b.add_u32(half, lid);
                    let pos = b.add_u32(wbase, pos0);
                    let oa = b.elem_addr(out, pos);
                    b.store_global(oa, detail);
                });
                // Swap ping/pong and halve the level (uniform).
                let t = b.fresh();
                b.mov_to(t, src);
                b.mov_to(src, dst);
                b.mov_to(dst, t);
                b.mov_to(cur, half);
            },
        );
        b.barrier();
        let is0 = b.eq_u32(lid, zero);
        b.if_(is0, |b| {
            let final_approx = b.load_local(src);
            let oa = b.elem_addr(out, wbase);
            b.store_global(oa, final_approx);
        });
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let n = n_samples(scale);
        let input = make_input(scale);
        let ib = dev.create_buffer((n * 4) as u32);
        let ob = dev.create_buffer((n * 4) as u32);
        dev.write_f32s(ib, &input);
        Plan {
            passes: vec![LaunchConfig::new_1d(n / 2, 64)
                .arg(Arg::Buffer(ib))
                .arg(Arg::Buffer(ob))],
            buffers: vec![ib, ob],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let input = make_input(scale);
        let want: Vec<f32> = input
            .chunks_exact(WINDOW)
            .flat_map(cpu_dwt_window)
            .collect();
        check_f32s(&dev.read_f32s(plan.buffers[1]), &want, 1e-4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_decomposes() {
        run_original(
            &DwtHaar1d,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_decomposes() {
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::intra_plus_lds().with_swizzle(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(&DwtHaar1d, Scale::Small, &DeviceConfig::small_test(), &opts).unwrap();
            assert_eq!(r.detections, 0, "{opts:?}");
        }
    }

    #[test]
    fn cpu_dwt_preserves_energy() {
        // Orthonormal transform: sum of squares preserved.
        let w: Vec<f32> = (0..WINDOW).map(|i| (i as f32 * 0.1).sin()).collect();
        let c = cpu_dwt_window(&w);
        let e_in: f32 = w.iter().map(|v| v * v).sum();
        let e_out: f32 = c.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-4);
    }
}

//! BitonicSort (BitS) — the classic multi-pass compare-exchange network.
//! Every pass streams the whole array through global memory: heavily
//! memory- and write-bound, which is why it suffers the paper's worst
//! Inter-Group slowdown (9.48×, Section 7.3).
//!
//! Buffers: `[0]` the data (sorted ascending in place).

use crate::util::{check_u32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder, Ty};

/// See module docs.
pub struct BitonicSort;

fn n_elems(scale: Scale) -> usize {
    match scale {
        Scale::Small => 512,
        Scale::Paper => 131072,
        Scale::Large => 262144,
    }
}

fn make_input(scale: Scale) -> Vec<u32> {
    let n = n_elems(scale);
    let mut rng = Xorshift::new(0xB170_50B7);
    (0..n).map(|_| rng.next_u32() & 0xFFFF).collect()
}

impl Benchmark for BitonicSort {
    fn name(&self) -> &'static str {
        "BitonicSort"
    }

    fn abbrev(&self) -> &'static str {
        "BitS"
    }

    fn kernel(&self) -> Kernel {
        // One compare-exchange per work-item; `p` is the pass distance
        // shift (k = 1 << p), `sp1` = stage + 1 (block direction shift).
        let mut b = KernelBuilder::new("bitonic_pass");
        let data = b.buffer_param("data");
        let p = b.scalar_param("p", Ty::U32);
        let sp1 = b.scalar_param("sp1", Ty::U32);
        let gid = b.global_id(0);
        let one = b.const_u32(1);
        let k = b.shl_u32(one, p);
        let km1 = b.sub_u32(k, one);

        // left = ((i >> p) << (p+1)) | (i & (k-1)); right = left + k.
        let hi_part = b.shr_u32(gid, p);
        let pp1 = b.add_u32(p, one);
        let hi_sh = b.shl_u32(hi_part, pp1);
        let lo_part = b.and_u32(gid, km1);
        let left = b.or_u32(hi_sh, lo_part);
        let right = b.add_u32(left, k);

        let la = b.elem_addr(data, left);
        let ra = b.elem_addr(data, right);
        let lv = b.load_global(la);
        let rv = b.load_global(ra);

        // Ascending block iff bit (stage+1) of `left` is 0.
        let blk = b.shr_u32(left, sp1);
        let dir = b.and_u32(blk, one);
        let zero = b.const_u32(0);
        let asc = b.eq_u32(dir, zero);
        let gt = b.gt_u32(lv, rv);
        let lt = b.lt_u32(lv, rv);
        let swap = b.select(asc, gt, lt);
        b.if_(swap, |b| {
            b.store_global(la, rv);
            b.store_global(ra, lv);
        });
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let n = n_elems(scale);
        let input = make_input(scale);
        let buf = dev.create_buffer((n * 4) as u32);
        dev.write_u32s(buf, &input);
        let stages = n.trailing_zeros();
        let mut passes = Vec::new();
        for stage in 0..stages {
            for p in (0..=stage).rev() {
                passes.push(
                    LaunchConfig::new_1d(n / 2, 64)
                        .arg(Arg::Buffer(buf))
                        .arg(Arg::U32(p))
                        .arg(Arg::U32(stage + 1)),
                );
            }
        }
        Plan {
            passes,
            buffers: vec![buf],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let mut want = make_input(scale);
        want.sort_unstable();
        let got = dev.read_u32s(plan.buffers[0]);
        check_u32s(&got, &want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_sorts() {
        run_original(
            &BitonicSort,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_sorts() {
        for opts in [
            TransformOptions::intra_minus_lds(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(
                &BitonicSort,
                Scale::Small,
                &DeviceConfig::small_test(),
                &opts,
            )
            .unwrap();
            assert_eq!(r.detections, 0);
        }
    }
}

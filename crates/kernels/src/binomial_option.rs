//! BinomialOption (BO) — Cox-Ross-Rubinstein binomial option pricing: one
//! work-group per option walks a 63-step lattice backwards in the LDS with
//! a barrier per step. The lattice is ping-pong double-buffered: with a
//! single barrier per step, reading `v[i+1]` while a neighbouring
//! wavefront writes it would race once the work-group spans more than one
//! wavefront — exactly what the Intra-Group transform's group doubling
//! causes. The paper's poster child for LDS-access-bound
//! behaviour: Intra-Group−LDS trades its redundant-computation cost for an
//! equally large communication cost (Section 6.4), and the FAST swizzle
//! variant recovers most of it (Figure 9).
//!
//! Buffers: `[0]` per-option uniform randoms, `[1]` option prices.

use crate::util::{check_f32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder};

/// See module docs.
pub struct BinomialOption;

const STEPS: usize = 63; // local size 64 = STEPS + 1
const RISK_FREE: f32 = 0.02;
const VOLATILITY: f32 = 0.30;

fn n_options(scale: Scale) -> usize {
    match scale {
        Scale::Small => 32,
        Scale::Paper => 512,
        Scale::Large => 4096,
    }
}

fn make_input(scale: Scale) -> Vec<f32> {
    let mut rng = Xorshift::new(0xB100_0713);
    (0..n_options(scale)).map(|_| rng.next_f32()).collect()
}

/// CPU pricing mirroring the kernel's f32 operation order.
fn cpu_price(r: f32) -> f32 {
    let s = 10.0f32 + 90.0 * r;
    let k = 10.0f32 + 90.0 * r;
    let t = 1.0f32 + 9.0 * r;
    let dt = t / STEPS as f32;
    let vsdt = VOLATILITY * dt.sqrt();
    let rdt = (RISK_FREE * dt).exp();
    let u = vsdt.exp();
    let d = (-vsdt).exp();
    let pu = (rdt - d) / (u - d);
    let pu_by_r = pu / rdt;
    let pd_by_r = (1.0 - pu) / rdt;

    let mut v: Vec<f32> = (0..=STEPS)
        .map(|i| {
            let price = s * (vsdt * (2.0 * i as f32 - STEPS as f32)).exp();
            (price - k).max(0.0)
        })
        .collect();
    for j in (1..=STEPS).rev() {
        for i in 0..j {
            v[i] = pu_by_r * v[i + 1] + pd_by_r * v[i];
        }
    }
    v[0]
}

impl Benchmark for BinomialOption {
    fn name(&self) -> &'static str {
        "BinomialOption"
    }

    fn abbrev(&self) -> &'static str {
        "BO"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("binomial_option");
        b.set_lds_bytes(2 * 64 * 4); // ping-pong lattice buffers
        let rand = b.buffer_param("rand");
        let out = b.buffer_param("price");
        let lid = b.local_id(0);
        let grp = b.group_id(0);
        let zero = b.const_u32(0);
        let one = b.const_u32(1);
        let four = b.const_u32(4);

        // Per-option parameters from the group's random.
        let ra = b.elem_addr(rand, grp);
        let r = b.load_global(ra);
        let c10 = b.const_f32(10.0);
        let c90 = b.const_f32(90.0);
        let c1 = b.const_f32(1.0);
        let c9 = b.const_f32(9.0);
        let sr = b.mul_f32(c90, r);
        let s = b.add_f32(c10, sr);
        let kr = b.mul_f32(c90, r);
        let k = b.add_f32(c10, kr);
        let tr = b.mul_f32(c9, r);
        let t = b.add_f32(c1, tr);

        let steps_f = b.const_f32(STEPS as f32);
        let dt = b.div_f32(t, steps_f);
        let vol = b.const_f32(VOLATILITY);
        let sdt = b.sqrt_f32(dt);
        let vsdt = b.mul_f32(vol, sdt);
        let rf = b.const_f32(RISK_FREE);
        let rdt_e = b.mul_f32(rf, dt);
        let rdt = b.exp_f32(rdt_e);
        let u = b.exp_f32(vsdt);
        let fzero = b.const_f32(0.0);
        let nvsdt = b.sub_f32(fzero, vsdt);
        let d = b.exp_f32(nvsdt);
        let num = b.sub_f32(rdt, d);
        let den = b.sub_f32(u, d);
        let pu = b.div_f32(num, den);
        let pu_by_r = b.div_f32(pu, rdt);
        let ompu = b.sub_f32(c1, pu);
        let pd_by_r = b.div_f32(ompu, rdt);

        // Leaf payoff at node `lid`: max(S·exp(vsdt·(2·lid − steps)) − K, 0).
        let two_f = b.const_f32(2.0);
        let lid_f = b.u32_to_f32(lid);
        let tl = b.mul_f32(two_f, lid_f);
        let e0 = b.sub_f32(tl, steps_f);
        let e1 = b.mul_f32(vsdt, e0);
        let growth = b.exp_f32(e1);
        let price = b.mul_f32(s, growth);
        let pk = b.sub_f32(price, k);
        let payoff = b.max_f32(pk, fzero);
        let lo = b.mul_u32(lid, four);
        b.store_local(lo, payoff);

        // Backward induction with ping-pong regions (safe across multiple
        // wavefronts in the group): j = steps … 1.
        let pong = b.const_u32(64 * 4);
        let src = b.fresh();
        b.mov_to(src, zero);
        let dst = b.fresh();
        b.mov_to(dst, pong);
        let j = b.fresh();
        let steps_c = b.const_u32(STEPS as u32);
        b.mov_to(j, steps_c);
        b.while_(
            |b| b.gt_u32(j, zero),
            |b| {
                b.barrier();
                let active = b.lt_u32(lid, j);
                b.if_(active, |b| {
                    let lp1 = b.add_u32(lid, one);
                    let lo1 = b.mul_u32(lp1, four);
                    let sa_up = b.add_u32(src, lo1);
                    let sa_here = b.add_u32(src, lo);
                    let up = b.load_local(sa_up);
                    let here = b.load_local(sa_here);
                    let a = b.mul_f32(pu_by_r, up);
                    let c = b.mul_f32(pd_by_r, here);
                    let nv = b.add_f32(a, c);
                    let da = b.add_u32(dst, lo);
                    b.store_local(da, nv);
                });
                let t = b.fresh();
                b.mov_to(t, src);
                b.mov_to(src, dst);
                b.mov_to(dst, t);
                let jm1 = b.sub_u32(j, one);
                b.mov_to(j, jm1);
            },
        );
        b.barrier();
        let is0 = b.eq_u32(lid, zero);
        b.if_(is0, |b| {
            let v0 = b.load_local(src);
            let oa = b.elem_addr(out, grp);
            b.store_global(oa, v0);
        });
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let n = n_options(scale);
        let input = make_input(scale);
        let rb = dev.create_buffer((n * 4) as u32);
        let ob = dev.create_buffer((n * 4) as u32);
        dev.write_f32s(rb, &input);
        Plan {
            passes: vec![LaunchConfig::new_1d(n * 64, 64)
                .arg(Arg::Buffer(rb))
                .arg(Arg::Buffer(ob))],
            buffers: vec![rb, ob],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let input = make_input(scale);
        let want: Vec<f32> = input.iter().map(|&r| cpu_price(r)).collect();
        check_f32s(&dev.read_f32s(plan.buffers[1]), &want, 2e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_prices() {
        run_original(
            &BinomialOption,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_prices() {
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::intra_minus_lds(),
            TransformOptions::intra_minus_lds().with_swizzle(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(
                &BinomialOption,
                Scale::Small,
                &DeviceConfig::small_test(),
                &opts,
            )
            .unwrap();
            assert_eq!(r.detections, 0, "{opts:?}");
        }
    }

    #[test]
    fn cpu_price_is_intrinsic_bounded() {
        // The option value is at least intrinsic value (S == K here, so 0)
        // and below the stock price.
        let p = cpu_price(0.5);
        assert!((0.0..55.0).contains(&p), "price {p}");
    }
}

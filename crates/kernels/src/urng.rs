//! UniformRandomNoise (URNG) — adds uniform noise to an image, one LCG
//! chain per pixel. Pure integer ALU work with one load and one store:
//! compute-bound, ~2× under every full RMT flavor in the paper.
//!
//! Buffers: `[0]` input image, `[1]` noisy output.

use crate::util::{check_u32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder};

/// See module docs.
pub struct Urng;

const LCG_A: u32 = 1103515245;
const LCG_C: u32 = 12345;
const ROUNDS: usize = 24;

fn n_pixels(scale: Scale) -> usize {
    match scale {
        Scale::Small => 4096,
        Scale::Paper => 65536,
        Scale::Large => 262144,
    }
}

fn make_input(scale: Scale) -> Vec<u32> {
    let mut rng = Xorshift::new(0x0123_4567);
    (0..n_pixels(scale)).map(|_| rng.below(256)).collect()
}

fn cpu_noise(pixel: u32, gid: u32) -> u32 {
    let mut s = pixel ^ gid.wrapping_mul(2654435761);
    for _ in 0..ROUNDS {
        s = s.wrapping_mul(LCG_A).wrapping_add(LCG_C);
    }
    let noise = (s >> 16) & 0xFF;
    pixel.wrapping_add(noise).wrapping_sub(128)
}

impl Benchmark for Urng {
    fn name(&self) -> &'static str {
        "UniformRandomNoise"
    }

    fn abbrev(&self) -> &'static str {
        "URNG"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("urng");
        let inp = b.buffer_param("in");
        let out = b.buffer_param("out");
        let gid = b.global_id(0);
        let ia = b.elem_addr(inp, gid);
        let pixel = b.load_global(ia);
        let knuth = b.const_u32(2654435761);
        let seed0 = b.mul_u32(gid, knuth);
        let mut s = b.xor_u32(pixel, seed0);
        let a = b.const_u32(LCG_A);
        let c = b.const_u32(LCG_C);
        for _ in 0..ROUNDS {
            let t = b.mul_u32(s, a);
            s = b.add_u32(t, c);
        }
        let sixteen = b.const_u32(16);
        let mask = b.const_u32(0xFF);
        let hi = b.shr_u32(s, sixteen);
        let noise = b.and_u32(hi, mask);
        let c128 = b.const_u32(128);
        let plus = b.add_u32(pixel, noise);
        let res = b.sub_u32(plus, c128);
        let oa = b.elem_addr(out, gid);
        b.store_global(oa, res);
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let n = n_pixels(scale);
        let input = make_input(scale);
        let ib = dev.create_buffer((n * 4) as u32);
        let ob = dev.create_buffer((n * 4) as u32);
        dev.write_u32s(ib, &input);
        Plan {
            passes: vec![LaunchConfig::new_1d(n, 64)
                .arg(Arg::Buffer(ib))
                .arg(Arg::Buffer(ob))],
            buffers: vec![ib, ob],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let input = make_input(scale);
        let want: Vec<u32> = input
            .iter()
            .enumerate()
            .map(|(i, &p)| cpu_noise(p, i as u32))
            .collect();
        check_u32s(&dev.read_u32s(plan.buffers[1]), &want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_adds_noise() {
        run_original(&Urng, Scale::Small, &DeviceConfig::small_test(), &|c| c).unwrap();
    }

    #[test]
    fn rmt_adds_noise() {
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::intra_plus_lds().with_swizzle(),
        ] {
            let r = run_rmt(&Urng, Scale::Small, &DeviceConfig::small_test(), &opts).unwrap();
            assert_eq!(r.detections, 0);
        }
    }
}

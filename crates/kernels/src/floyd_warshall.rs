//! FloydWarshall (FW) — all-pairs shortest paths, one kernel launch per
//! pivot `k`. Global-memory-bound with a long-running multi-pass profile
//! (one of the paper's power-measurement workloads, Figure 5).
//!
//! Buffers: `[0]` the n×n distance matrix (u32, in place).

use crate::util::{check_u32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder, Ty};

/// See module docs.
pub struct FloydWarshall;

const INF: u32 = 1 << 24;

fn n_nodes(scale: Scale) -> usize {
    match scale {
        Scale::Small => 32,
        Scale::Paper => 128,
        Scale::Large => 192,
    }
}

fn make_input(scale: Scale) -> Vec<u32> {
    let n = n_nodes(scale);
    let mut rng = Xorshift::new(0xF10D_3A11);
    let mut d = vec![INF; n * n];
    for i in 0..n {
        d[i * n + i] = 0;
        // Sparse random edges.
        for _ in 0..4 {
            let j = rng.below(n as u32) as usize;
            if j != i {
                d[i * n + j] = 1 + rng.below(100);
            }
        }
    }
    d
}

fn cpu_fw(d: &mut [u32], n: usize) {
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i * n + k].saturating_add(d[k * n + j]);
                if via < d[i * n + j] {
                    d[i * n + j] = via;
                }
            }
        }
    }
}

impl Benchmark for FloydWarshall {
    fn name(&self) -> &'static str {
        "FloydWarshall"
    }

    fn abbrev(&self) -> &'static str {
        "FW"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("fw_pass");
        let dist = b.buffer_param("dist");
        let n = b.scalar_param("n", Ty::U32);
        let k = b.scalar_param("k", Ty::U32);
        let i = b.global_id(1);
        let j = b.global_id(0);
        let row = b.mul_u32(i, n);
        let ij = b.add_u32(row, j);
        let ik = b.add_u32(row, k);
        let krow = b.mul_u32(k, n);
        let kj = b.add_u32(krow, j);
        let a_ij = b.elem_addr(dist, ij);
        let a_ik = b.elem_addr(dist, ik);
        let a_kj = b.elem_addr(dist, kj);
        let d_ij = b.load_global(a_ij);
        let d_ik = b.load_global(a_ik);
        let d_kj = b.load_global(a_kj);
        let via = b.add_u32(d_ik, d_kj);
        let better = b.lt_u32(via, d_ij);
        b.if_(better, |b| {
            b.store_global(a_ij, via);
        });
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let n = n_nodes(scale);
        let input = make_input(scale);
        let buf = dev.create_buffer((n * n * 4) as u32);
        dev.write_u32s(buf, &input);
        let passes = (0..n as u32)
            .map(|k| {
                LaunchConfig::new([n, n, 1], [16, 4, 1])
                    .arg(Arg::Buffer(buf))
                    .arg(Arg::U32(n as u32))
                    .arg(Arg::U32(k))
            })
            .collect();
        Plan {
            passes,
            buffers: vec![buf],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let n = n_nodes(scale);
        let mut want = make_input(scale);
        cpu_fw(&mut want, n);
        check_u32s(&dev.read_u32s(plan.buffers[0]), &want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_shortest_paths() {
        run_original(
            &FloydWarshall,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_shortest_paths() {
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(
                &FloydWarshall,
                Scale::Small,
                &DeviceConfig::small_test(),
                &opts,
            )
            .unwrap();
            assert_eq!(r.detections, 0);
        }
    }
}

//! SobelFilter (SF) — 3×3 gradient-magnitude edge detector. A memory-bound
//! 2-D stencil whose shared neighbourhood reads put it in the paper's
//! low-overhead group (Figures 2 and 6), with slipstream-style prefetching
//! between redundant groups (Section 7.4).
//!
//! Buffers: `[0]` grayscale input (u32), `[1]` gradient magnitude (f32).

use crate::util::{check_f32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder, Reg, Ty};

/// See module docs.
pub struct SobelFilter;

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Small => (64, 32),
        Scale::Paper => (256, 128),
        Scale::Large => (512, 256),
    }
}

fn make_input(scale: Scale) -> Vec<u32> {
    let (w, h) = dims(scale);
    let mut rng = Xorshift::new(0x50B3_1F17);
    (0..w * h).map(|_| rng.below(256)).collect()
}

fn cpu_sobel(input: &[u32], w: usize, h: usize) -> Vec<f32> {
    let px = |x: usize, y: usize| -> f32 {
        let cx = x.min(w - 1);
        let cy = y.min(h - 1);
        input[cy * w + cx] as f32
    };
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            // Interior only; borders stay zero (SDK behaviour).
            if x == 0 || y == 0 || x == w - 1 || y == h - 1 {
                continue;
            }
            let gx = px(x + 1, y - 1) - px(x - 1, y - 1)
                + 2.0 * (px(x + 1, y) - px(x - 1, y))
                + px(x + 1, y + 1)
                - px(x - 1, y + 1);
            let gy = px(x - 1, y + 1) - px(x - 1, y - 1)
                + 2.0 * (px(x, y + 1) - px(x, y - 1))
                + px(x + 1, y + 1)
                - px(x + 1, y - 1);
            out[y * w + x] = (gx * gx + gy * gy).sqrt() / 2.0;
        }
    }
    out
}

impl Benchmark for SobelFilter {
    fn name(&self) -> &'static str {
        "SobelFilter"
    }

    fn abbrev(&self) -> &'static str {
        "SF"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("sobel_filter");
        let inp = b.buffer_param("in");
        let out = b.buffer_param("out");
        let w = b.scalar_param("w", Ty::U32);
        let h = b.scalar_param("h", Ty::U32);
        let x = b.global_id(0);
        let y = b.global_id(1);
        let one = b.const_u32(1);
        let zero = b.const_u32(0);
        let wm1 = b.sub_u32(w, one);
        let hm1 = b.sub_u32(h, one);

        let rowb = b.mul_u32(y, w);
        let idx = b.add_u32(rowb, x);
        let oa = b.elem_addr(out, idx);
        let fzero = b.const_f32(0.0);
        b.store_global(oa, fzero); // borders (and a default) are zero

        // interior = x>0 && y>0 && x<w-1 && y<h-1
        let x_ok_lo = b.gt_u32(x, zero);
        let y_ok_lo = b.gt_u32(y, zero);
        let x_ok_hi = b.lt_u32(x, wm1);
        let y_ok_hi = b.lt_u32(y, hm1);
        let a1 = b.and_u32(x_ok_lo, y_ok_lo);
        let a2 = b.and_u32(x_ok_hi, y_ok_hi);
        let interior = b.and_u32(a1, a2);

        b.if_(interior, |b| {
            // Load the 3×3 neighbourhood as f32.
            let px = |b: &mut KernelBuilder, dx: i32, dy: i32| -> Reg {
                let xx = if dx >= 0 {
                    let d = b.const_u32(dx as u32);
                    b.add_u32(x, d)
                } else {
                    let d = b.const_u32((-dx) as u32);
                    b.sub_u32(x, d)
                };
                let yy = if dy >= 0 {
                    let d = b.const_u32(dy as u32);
                    b.add_u32(y, d)
                } else {
                    let d = b.const_u32((-dy) as u32);
                    b.sub_u32(y, d)
                };
                let r = b.mul_u32(yy, w);
                let i = b.add_u32(r, xx);
                let a = b.elem_addr(inp, i);
                let v = b.load_global(a);
                b.u32_to_f32(v)
            };
            let two = b.const_f32(2.0);

            let p_e_n = px(b, 1, -1);
            let p_w_n = px(b, -1, -1);
            let p_e = px(b, 1, 0);
            let p_w = px(b, -1, 0);
            let p_e_s = px(b, 1, 1);
            let p_w_s = px(b, -1, 1);
            let p_n = px(b, 0, -1);
            let p_s = px(b, 0, 1);

            // gx = (E-W at N) + 2*(E-W) + (E_S - W_S)
            let d1 = b.sub_f32(p_e_n, p_w_n);
            let d2 = b.sub_f32(p_e, p_w);
            let d2x = b.mul_f32(two, d2);
            let d3 = b.sub_f32(p_e_s, p_w_s);
            let gx0 = b.add_f32(d1, d2x);
            let gx = b.add_f32(gx0, d3);

            // gy = (W_S - W_N) + 2*(S - N) + (E_S - E_N)
            let e1 = b.sub_f32(p_w_s, p_w_n);
            let e2 = b.sub_f32(p_s, p_n);
            let e2x = b.mul_f32(two, e2);
            let e3 = b.sub_f32(p_e_s, p_e_n);
            let gy0 = b.add_f32(e1, e2x);
            let gy = b.add_f32(gy0, e3);

            let gx2 = b.mul_f32(gx, gx);
            let gy2 = b.mul_f32(gy, gy);
            let s = b.add_f32(gx2, gy2);
            let mag = b.sqrt_f32(s);
            let half = b.const_f32(0.5);
            let res = b.mul_f32(mag, half);
            b.store_global(oa, res);
        });
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let (w, h) = dims(scale);
        let input = make_input(scale);
        let ib = dev.create_buffer((w * h * 4) as u32);
        let ob = dev.create_buffer((w * h * 4) as u32);
        dev.write_u32s(ib, &input);
        Plan {
            passes: vec![LaunchConfig::new([w, h, 1], [32, 4, 1])
                .arg(Arg::Buffer(ib))
                .arg(Arg::Buffer(ob))
                .arg(Arg::U32(w as u32))
                .arg(Arg::U32(h as u32))],
            buffers: vec![ib, ob],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let (w, h) = dims(scale);
        let want = cpu_sobel(&make_input(scale), w, h);
        // f32 addition is reassociated between kernel and reference.
        check_f32s(&dev.read_f32s(plan.buffers[1]), &want, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_edges() {
        run_original(
            &SobelFilter,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_edges() {
        let r = run_rmt(
            &SobelFilter,
            Scale::Small,
            &DeviceConfig::small_test(),
            &TransformOptions::inter(),
        )
        .unwrap();
        assert_eq!(r.detections, 0);
    }

    #[test]
    fn flat_image_has_no_edges() {
        let img = vec![100u32; 16 * 16];
        let out = cpu_sobel(&img, 16, 16);
        assert!(out.iter().all(|&v| v == 0.0));
    }
}

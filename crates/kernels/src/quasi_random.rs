//! QuasiRandomSequence (QRS) — Sobol' sequence generation: each point is
//! an XOR-fold of direction numbers selected by its index bits. Integer
//! ALU plus small, heavily-shared table reads (scalar-cached); its
//! communication-heavy RMT profile makes it one of the kernels the FAST
//! swizzle path helps most (Figure 9).
//!
//! Buffers: `[0]` direction numbers (32 per dimension), `[1]` output
//! points (`dims × n` values).

use crate::util::{check_u32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder, Ty};

/// See module docs.
pub struct QuasiRandomSequence;

const DIMS: usize = 4;

fn n_points(scale: Scale) -> usize {
    match scale {
        Scale::Small => 2048,
        Scale::Paper => 32768,
        Scale::Large => 131072,
    }
}

/// Direction numbers: dimension 0 is the classic van-der-Corput set; the
/// rest are deterministic pseudo-directions (adequate for a performance
/// workload; numerically faithful Sobol' initialisation is out of scope).
fn directions() -> Vec<u32> {
    let mut v = Vec::with_capacity(DIMS * 32);
    for d in 0..DIMS {
        let mut rng = Xorshift::new(0x50B0_1000 + d as u32);
        for bit in 0..32 {
            if d == 0 {
                v.push(1u32 << (31 - bit));
            } else {
                // Odd values shifted to the top bits, as real direction
                // numbers are.
                let m = (rng.next_u32() | 1) & (((1u64 << (bit + 1)) - 1) as u32);
                v.push(m << (31 - bit));
            }
        }
    }
    v
}

fn cpu_sobol(dirs: &[u32], dim: usize, i: u32) -> u32 {
    let mut acc = 0u32;
    for bit in 0..32 {
        if (i >> bit) & 1 == 1 {
            acc ^= dirs[dim * 32 + bit];
        }
    }
    acc
}

impl Benchmark for QuasiRandomSequence {
    fn name(&self) -> &'static str {
        "QuasiRandomSequence"
    }

    fn abbrev(&self) -> &'static str {
        "QRS"
    }

    fn kernel(&self) -> Kernel {
        // One work-item per (point, dim): gid = dim * n + i.
        let mut b = KernelBuilder::new("quasi_random");
        let dirs = b.buffer_param("directions");
        let out = b.buffer_param("out");
        let n = b.scalar_param("n", Ty::U32);
        let gid = b.global_id(0);
        let dim = b.div_u32(gid, n);
        let i = b.rem_u32(gid, n);

        let zero = b.const_u32(0);
        let one = b.const_u32(1);
        let c32 = b.const_u32(32);
        let dbase = b.mul_u32(dim, c32);

        let acc = b.fresh();
        b.mov_to(acc, zero);
        let bit = b.fresh();
        b.mov_to(bit, zero);
        b.while_(
            |b| b.lt_u32(bit, c32),
            |b| {
                let sh = b.shr_u32(i, bit);
                let set = b.and_u32(sh, one);
                let taken = b.ne_u32(set, zero);
                b.if_(taken, |b| {
                    let di = b.add_u32(dbase, bit);
                    let da = b.elem_addr(dirs, di);
                    let dv = b.load_global(da);
                    let x = b.xor_u32(acc, dv);
                    b.mov_to(acc, x);
                });
                let nb = b.add_u32(bit, one);
                b.mov_to(bit, nb);
            },
        );
        let oa = b.elem_addr(out, gid);
        b.store_global(oa, acc);
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let n = n_points(scale);
        let dirs = directions();
        let db = dev.create_buffer((dirs.len() * 4) as u32);
        let ob = dev.create_buffer((DIMS * n * 4) as u32);
        dev.write_u32s(db, &dirs);
        Plan {
            passes: vec![LaunchConfig::new_1d(DIMS * n, 64)
                .arg(Arg::Buffer(db))
                .arg(Arg::Buffer(ob))
                .arg(Arg::U32(n as u32))],
            buffers: vec![db, ob],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let n = n_points(scale);
        let dirs = directions();
        let want: Vec<u32> = (0..DIMS * n)
            .map(|g| cpu_sobol(&dirs, g / n, (g % n) as u32))
            .collect();
        check_u32s(&dev.read_u32s(plan.buffers[1]), &want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_generates() {
        run_original(
            &QuasiRandomSequence,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_generates() {
        for opts in [
            TransformOptions::intra_plus_lds().with_swizzle(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(
                &QuasiRandomSequence,
                Scale::Small,
                &DeviceConfig::small_test(),
                &opts,
            )
            .unwrap();
            assert_eq!(r.detections, 0);
        }
    }

    #[test]
    fn dimension_zero_is_van_der_corput() {
        let dirs = directions();
        // Van der Corput: value of index 1 is 0.5 (top bit).
        assert_eq!(cpu_sobol(&dirs, 0, 1), 1 << 31);
        // Gray-code-free direct XOR: index 3 = dir0 ^ dir1.
        assert_eq!(cpu_sobol(&dirs, 0, 3), (1 << 31) | (1 << 30));
    }
}

//! FastWalshTransform (FWT) — multi-pass global-memory butterfly. Like
//! BitonicSort it is bound by global memory traffic, which the paper shows
//! makes Intra-Group RMT nearly free (Figure 2) and Inter-Group RMT
//! catastrophic (9.37×, Figure 6).
//!
//! Buffers: `[0]` the signal (transformed in place).

use crate::util::{check_f32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder, Ty};

/// See module docs.
pub struct FastWalshTransform;

fn n_elems(scale: Scale) -> usize {
    match scale {
        Scale::Small => 512,
        Scale::Paper => 131072,
        Scale::Large => 262144,
    }
}

fn make_input(scale: Scale) -> Vec<f32> {
    let mut rng = Xorshift::new(0xFA57_3A15);
    (0..n_elems(scale))
        .map(|_| rng.range_f32(-1.0, 1.0))
        .collect()
}

fn cpu_fwt(data: &mut [f32]) {
    let n = data.len();
    let mut step = 1;
    while step < n {
        for group in (0..n).step_by(step * 2) {
            for i in group..group + step {
                let a = data[i];
                let b = data[i + step];
                data[i] = a + b;
                data[i + step] = a - b;
            }
        }
        step *= 2;
    }
}

impl Benchmark for FastWalshTransform {
    fn name(&self) -> &'static str {
        "FastWalshTransform"
    }

    fn abbrev(&self) -> &'static str {
        "FWT"
    }

    fn kernel(&self) -> Kernel {
        // One butterfly per work-item: `p` = log2(step).
        let mut b = KernelBuilder::new("fwt_pass");
        let data = b.buffer_param("data");
        let p = b.scalar_param("p", Ty::U32);
        let gid = b.global_id(0);
        let one = b.const_u32(1);
        let step = b.shl_u32(one, p);
        let sm1 = b.sub_u32(step, one);

        // left = ((i >> p) << (p+1)) | (i & (step-1)); right = left + step.
        let hi = b.shr_u32(gid, p);
        let pp1 = b.add_u32(p, one);
        let hi_sh = b.shl_u32(hi, pp1);
        let lo = b.and_u32(gid, sm1);
        let left = b.or_u32(hi_sh, lo);
        let right = b.add_u32(left, step);

        let la = b.elem_addr(data, left);
        let ra = b.elem_addr(data, right);
        let a = b.load_global(la);
        let v = b.load_global(ra);
        let sum = b.add_f32(a, v);
        let diff = b.sub_f32(a, v);
        b.store_global(la, sum);
        b.store_global(ra, diff);
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let n = n_elems(scale);
        let input = make_input(scale);
        let buf = dev.create_buffer((n * 4) as u32);
        dev.write_f32s(buf, &input);
        let passes = (0..n.trailing_zeros())
            .map(|p| {
                LaunchConfig::new_1d(n / 2, 64)
                    .arg(Arg::Buffer(buf))
                    .arg(Arg::U32(p))
            })
            .collect();
        Plan {
            passes,
            buffers: vec![buf],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let mut want = make_input(scale);
        cpu_fwt(&mut want);
        check_f32s(&dev.read_f32s(plan.buffers[0]), &want, 1e-4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_transforms() {
        run_original(
            &FastWalshTransform,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_transforms() {
        let r = run_rmt(
            &FastWalshTransform,
            Scale::Small,
            &DeviceConfig::small_test(),
            &TransformOptions::intra_plus_lds(),
        )
        .unwrap();
        assert_eq!(r.detections, 0);
    }

    #[test]
    fn cpu_fwt_is_involutive_up_to_n() {
        // WHT applied twice = n * identity.
        let mut d = vec![1.0f32, 2.0, 3.0, 4.0];
        cpu_fwt(&mut d);
        cpu_fwt(&mut d);
        assert_eq!(d, vec![4.0, 8.0, 12.0, 16.0]);
    }
}

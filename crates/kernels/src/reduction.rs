//! Reduction (R) — per-group LDS tree reduction producing one partial sum
//! per work-group. Memory-read-bound with tiny write traffic; only lane 0
//! of each group stores, so most redundant work hides behind global
//! memory latency (Section 7.4's "ghost" discussion), yet the group
//! doubling and communication costs still bite (Figure 4).
//!
//! Buffers: `[0]` input, `[1]` per-group partial sums.

use crate::util::{check_u32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder};

/// See module docs.
pub struct Reduction;

const LOCAL: usize = 128;

fn n_elems(scale: Scale) -> usize {
    match scale {
        Scale::Small => 4096,
        Scale::Paper => 524288,
        Scale::Large => 2097152,
    }
}

fn make_input(scale: Scale) -> Vec<u32> {
    let mut rng = Xorshift::new(0x4ED0_C710);
    (0..n_elems(scale)).map(|_| rng.below(1000)).collect()
}

impl Benchmark for Reduction {
    fn name(&self) -> &'static str {
        "Reduction"
    }

    fn abbrev(&self) -> &'static str {
        "R"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("reduction");
        b.set_lds_bytes((LOCAL * 4) as u32);
        let inp = b.buffer_param("in");
        let out = b.buffer_param("partials");
        let gid = b.global_id(0);
        let lid = b.local_id(0);
        let grp = b.group_id(0);
        let ls = b.local_size(0);
        let four = b.const_u32(4);
        let one = b.const_u32(1);
        let zero = b.const_u32(0);

        let ia = b.elem_addr(inp, gid);
        let v = b.load_global(ia);
        let lo = b.mul_u32(lid, four);
        b.store_local(lo, v);

        // Tree reduce: s = ls/2; while s > 0 { barrier; if lid < s: add }.
        let s = b.fresh();
        let init = b.shr_u32(ls, one);
        b.mov_to(s, init);
        b.while_(
            |b| b.gt_u32(s, zero),
            |b| {
                b.barrier();
                let active = b.lt_u32(lid, s);
                b.if_(active, |b| {
                    let partner = b.add_u32(lid, s);
                    let po = b.mul_u32(partner, four);
                    let pv = b.load_local(po);
                    let mine = b.load_local(lo);
                    let sum = b.add_u32(mine, pv);
                    b.store_local(lo, sum);
                });
                let half = b.shr_u32(s, one);
                b.mov_to(s, half);
            },
        );
        b.barrier();
        let is0 = b.eq_u32(lid, zero);
        b.if_(is0, |b| {
            let total = b.load_local(zero);
            let oa = b.elem_addr(out, grp);
            b.store_global(oa, total);
        });
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let n = n_elems(scale);
        let input = make_input(scale);
        let ib = dev.create_buffer((n * 4) as u32);
        let ob = dev.create_buffer((n / LOCAL * 4) as u32);
        dev.write_u32s(ib, &input);
        Plan {
            passes: vec![LaunchConfig::new_1d(n, LOCAL)
                .arg(Arg::Buffer(ib))
                .arg(Arg::Buffer(ob))],
            buffers: vec![ib, ob],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let input = make_input(scale);
        let want: Vec<u32> = input
            .chunks_exact(LOCAL)
            .map(|c| c.iter().fold(0u32, |a, &b| a.wrapping_add(b)))
            .collect();
        check_u32s(&dev.read_u32s(plan.buffers[1]), &want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_reduces() {
        run_original(
            &Reduction,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_reduces() {
        // LDS staging makes +LDS vs −LDS interesting here.
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::intra_minus_lds(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(&Reduction, Scale::Small, &DeviceConfig::small_test(), &opts).unwrap();
            assert_eq!(r.detections, 0, "{opts:?}");
        }
    }
}

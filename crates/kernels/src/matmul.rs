//! MatrixMultiplication (MM) — classic LDS-tiled GEMM with 8×8 tiles.
//! Compute- and LDS-bound; under Intra-Group+LDS the doubled tile
//! allocations make LDS the occupancy limiter, the effect behind MM's
//! large "doubling" overhead bar in Figure 4.
//!
//! Buffers: `[0]` A, `[1]` B, `[2]` C (all n×n row-major f32).

use crate::util::{check_f32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder, Ty};

/// See module docs.
pub struct MatrixMultiplication;

const TILE: usize = 8;

fn n_dim(scale: Scale) -> usize {
    match scale {
        Scale::Small => 32,
        Scale::Paper => 128,
        Scale::Large => 256,
    }
}

fn make_inputs(scale: Scale) -> (Vec<f32>, Vec<f32>) {
    let n = n_dim(scale);
    let mut rng = Xorshift::new(0x3A7_121F);
    let a = (0..n * n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    let b = (0..n * n).map(|_| rng.range_f32(-1.0, 1.0)).collect();
    (a, b)
}

fn cpu_matmul(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            // Accumulate in the same order as the kernel (t outer, k inner).
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

impl Benchmark for MatrixMultiplication {
    fn name(&self) -> &'static str {
        "MatrixMultiplication"
    }

    fn abbrev(&self) -> &'static str {
        "MM"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("matmul_tiled");
        // Two 8×8 f32 tiles in LDS.
        b.set_lds_bytes((2 * TILE * TILE * 4) as u32);
        let a_buf = b.buffer_param("a");
        let b_buf = b.buffer_param("b");
        let c_buf = b.buffer_param("c");
        let n = b.scalar_param("n", Ty::U32);

        let gx = b.global_id(0);
        let gy = b.global_id(1);
        let lx = b.local_id(0);
        let ly = b.local_id(1);
        let zero = b.const_u32(0);
        let one = b.const_u32(1);
        let four = b.const_u32(4);
        let tile_c = b.const_u32(TILE as u32);
        let ntiles = b.div_u32(n, tile_c);
        let b_tile_base = b.const_u32((TILE * TILE * 4) as u32);

        let fzero = b.const_f32(0.0);
        let acc = b.fresh();
        b.mov_to(acc, fzero);

        // lds word index of (row, col) within a tile: row*8 + col.
        let lrow = b.mul_u32(ly, tile_c);
        let lidx = b.add_u32(lrow, lx);
        let loff = b.mul_u32(lidx, four);
        let boff0 = b.add_u32(b_tile_base, loff);

        let t = b.fresh();
        b.mov_to(t, zero);
        b.while_(
            |b| b.lt_u32(t, ntiles),
            |b| {
                let tbase = b.mul_u32(t, tile_c);
                // A[gy][t*8 + lx]
                let acol = b.add_u32(tbase, lx);
                let arow = b.mul_u32(gy, n);
                let aidx = b.add_u32(arow, acol);
                let aa = b.elem_addr(a_buf, aidx);
                let av = b.load_global(aa);
                b.store_local(loff, av);
                // B[t*8 + ly][gx]
                let brow = b.add_u32(tbase, ly);
                let brow_b = b.mul_u32(brow, n);
                let bidx = b.add_u32(brow_b, gx);
                let ba = b.elem_addr(b_buf, bidx);
                let bv = b.load_global(ba);
                b.store_local(boff0, bv);
                b.barrier();

                // acc += sum_k Atile[ly][k] * Btile[k][lx]
                for k in 0..TILE as u32 {
                    let kc = b.const_u32(k);
                    let arow_l = b.mul_u32(ly, tile_c);
                    let ai = b.add_u32(arow_l, kc);
                    let ao = b.mul_u32(ai, four);
                    let a_el = b.load_local(ao);
                    let brow_l = b.mul_u32(kc, tile_c);
                    let bi = b.add_u32(brow_l, lx);
                    let bo4 = b.mul_u32(bi, four);
                    let bo = b.add_u32(b_tile_base, bo4);
                    let b_el = b.load_local(bo);
                    let prod = b.mul_f32(a_el, b_el);
                    let new = b.add_f32(acc, prod);
                    b.mov_to(acc, new);
                }
                b.barrier();
                let tn = b.add_u32(t, one);
                b.mov_to(t, tn);
            },
        );

        let crow = b.mul_u32(gy, n);
        let cidx = b.add_u32(crow, gx);
        let ca = b.elem_addr(c_buf, cidx);
        b.store_global(ca, acc);
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let n = n_dim(scale);
        let (a, bm) = make_inputs(scale);
        let ab = dev.create_buffer((n * n * 4) as u32);
        let bb = dev.create_buffer((n * n * 4) as u32);
        let cb = dev.create_buffer((n * n * 4) as u32);
        dev.write_f32s(ab, &a);
        dev.write_f32s(bb, &bm);
        Plan {
            passes: vec![LaunchConfig::new([n, n, 1], [TILE, TILE, 1])
                .arg(Arg::Buffer(ab))
                .arg(Arg::Buffer(bb))
                .arg(Arg::Buffer(cb))
                .arg(Arg::U32(n as u32))],
            buffers: vec![ab, bb, cb],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let n = n_dim(scale);
        let (a, bm) = make_inputs(scale);
        let want = cpu_matmul(&a, &bm, n);
        check_f32s(&dev.read_f32s(plan.buffers[2]), &want, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_multiplies() {
        run_original(
            &MatrixMultiplication,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_multiplies() {
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::intra_minus_lds(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(
                &MatrixMultiplication,
                Scale::Small,
                &DeviceConfig::small_test(),
                &opts,
            )
            .unwrap();
            assert_eq!(r.detections, 0, "{opts:?}");
        }
    }

    #[test]
    fn cpu_identity_matmul() {
        let n = 4;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let a: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        assert_eq!(cpu_matmul(&a, &eye, n), a);
    }
}

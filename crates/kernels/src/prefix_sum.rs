//! PrefixSum (PS) — single-work-group Blelchoch exclusive scan in the LDS.
//! By construction it launches exactly one work-group, so it utilizes one
//! of the twelve CUs — the paper's second CU-under-utilization example
//! (1.59× under Inter-Group, Section 7.4), and a heavy communicator under
//! Intra-Group (Figure 4).
//!
//! Buffers: `[0]` input, `[1]` exclusive prefix sums.

use crate::util::{check_u32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder};

/// See module docs.
pub struct PrefixSum;

fn group_items(scale: Scale) -> usize {
    match scale {
        Scale::Small => 64,
        Scale::Paper | Scale::Large => 128,
    }
}

fn make_input(scale: Scale) -> Vec<u32> {
    let n = group_items(scale) * 2;
    let mut rng = Xorshift::new(0x9F1E_F1C5);
    (0..n).map(|_| rng.below(100)).collect()
}

impl Benchmark for PrefixSum {
    fn name(&self) -> &'static str {
        "PrefixSum"
    }

    fn abbrev(&self) -> &'static str {
        "PS"
    }

    fn kernel(&self) -> Kernel {
        // Each work-item owns elements 2·lid and 2·lid+1; n = 2·local_size.
        let mut b = KernelBuilder::new("prefix_sum");
        b.set_lds_bytes(256 * 4);
        let inp = b.buffer_param("in");
        let out = b.buffer_param("out");
        let lid = b.local_id(0);
        let ls = b.local_size(0);
        let gid = b.global_id(0);
        let zero = b.const_u32(0);
        let one = b.const_u32(1);
        let two = b.const_u32(2);
        let four = b.const_u32(4);
        let n = b.mul_u32(ls, two);

        // Load both elements.
        let e0 = b.mul_u32(gid, two);
        let e1 = b.add_u32(e0, one);
        let a0 = b.elem_addr(inp, e0);
        let a1 = b.elem_addr(inp, e1);
        let v0 = b.load_global(a0);
        let v1 = b.load_global(a1);
        let l0 = b.mul_u32(lid, two);
        let l1 = b.add_u32(l0, one);
        let lo0 = b.mul_u32(l0, four);
        let lo1 = b.mul_u32(l1, four);
        b.store_local(lo0, v0);
        b.store_local(lo1, v1);

        // Helper producing the byte offsets of the Blelloch pair.
        // ai = offset*(2*lid+1) - 1; bi = offset*(2*lid+2) - 1.
        let pair = |b: &mut KernelBuilder, offset: rmt_ir::Reg| {
            let tl = b.mul_u32(lid, two);
            let tl1 = b.add_u32(tl, one);
            let tl2 = b.add_u32(tl, two);
            let ai0 = b.mul_u32(offset, tl1);
            let ai = b.sub_u32(ai0, one);
            let bi0 = b.mul_u32(offset, tl2);
            let bi = b.sub_u32(bi0, one);
            let ao = b.mul_u32(ai, four);
            let bo = b.mul_u32(bi, four);
            (ao, bo)
        };

        // Up-sweep.
        let offset = b.fresh();
        b.mov_to(offset, one);
        let d = b.fresh();
        let half = b.shr_u32(n, one);
        b.mov_to(d, half);
        b.while_(
            |b| b.gt_u32(d, zero),
            |b| {
                b.barrier();
                let active = b.lt_u32(lid, d);
                b.if_(active, |b| {
                    let (ao, bo) = pair(b, offset);
                    let av = b.load_local(ao);
                    let bv = b.load_local(bo);
                    let s = b.add_u32(av, bv);
                    b.store_local(bo, s);
                });
                let o2 = b.shl_u32(offset, one);
                b.mov_to(offset, o2);
                let d2 = b.shr_u32(d, one);
                b.mov_to(d, d2);
            },
        );

        // Clear the root.
        b.barrier();
        let is0 = b.eq_u32(lid, zero);
        b.if_(is0, |b| {
            let nm1 = b.sub_u32(n, one);
            let ro = b.mul_u32(nm1, four);
            b.store_local(ro, zero);
        });

        // Down-sweep.
        b.mov_to(d, one);
        b.while_(
            |b| b.lt_u32(d, n),
            |b| {
                let o2 = b.shr_u32(offset, one);
                b.mov_to(offset, o2);
                b.barrier();
                let active = b.lt_u32(lid, d);
                b.if_(active, |b| {
                    let (ao, bo) = pair(b, offset);
                    let av = b.load_local(ao);
                    let bv = b.load_local(bo);
                    b.store_local(ao, bv);
                    let s = b.add_u32(av, bv);
                    b.store_local(bo, s);
                });
                let d2 = b.shl_u32(d, one);
                b.mov_to(d, d2);
            },
        );
        b.barrier();

        // Write both results.
        let r0 = b.load_local(lo0);
        let r1 = b.load_local(lo1);
        let oa0 = b.elem_addr(out, e0);
        let oa1 = b.elem_addr(out, e1);
        b.store_global(oa0, r0);
        b.store_global(oa1, r1);
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let items = group_items(scale);
        let input = make_input(scale);
        let ib = dev.create_buffer((input.len() * 4) as u32);
        let ob = dev.create_buffer((input.len() * 4) as u32);
        dev.write_u32s(ib, &input);
        Plan {
            passes: vec![LaunchConfig::new_1d(items, items)
                .arg(Arg::Buffer(ib))
                .arg(Arg::Buffer(ob))],
            buffers: vec![ib, ob],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let input = make_input(scale);
        let mut want = Vec::with_capacity(input.len());
        let mut acc = 0u32;
        for &v in &input {
            want.push(acc);
            acc = acc.wrapping_add(v);
        }
        check_u32s(&dev.read_u32s(plan.buffers[1]), &want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_scans() {
        run_original(
            &PrefixSum,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_scans() {
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::intra_minus_lds(),
            TransformOptions::intra_plus_lds().with_swizzle(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(&PrefixSum, Scale::Small, &DeviceConfig::small_test(), &opts).unwrap();
            assert_eq!(r.detections, 0, "{opts:?}");
        }
    }
}

//! Deterministic input generation and numeric comparison helpers.

/// A small deterministic PRNG (xorshift32) so every run — and the CPU
/// references — see identical inputs without threading a rand crate
/// through the benchmark trait.
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u32,
}

impl Xorshift {
    /// Seeds the generator (zero is remapped to a fixed non-zero seed).
    pub fn new(seed: u32) -> Self {
        Xorshift {
            state: if seed == 0 { 0x9E37_79B9 } else { seed },
        }
    }

    /// Next u32.
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Uniform float in [0, 1).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }

    /// Uniform float in [lo, hi).
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform u32 in [0, n).
    pub fn below(&mut self, n: u32) -> u32 {
        if n == 0 {
            0
        } else {
            self.next_u32() % n
        }
    }
}

/// Compares float slices with a combined absolute/relative tolerance.
///
/// # Errors
///
/// Describes the worst mismatch (index, values, error).
pub fn check_f32s(got: &[f32], want: &[f32], tol: f32) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length mismatch: {} vs {}", got.len(), want.len()));
    }
    let mut worst: Option<(usize, f32, f32, f32)> = None;
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let denom = 1.0f32.max(w.abs());
        let err = (g - w).abs() / denom;
        if (err.is_nan() || err > tol) && worst.is_none_or(|(_, _, _, e)| err > e || err.is_nan()) {
            worst = Some((i, g, w, err));
        }
    }
    match worst {
        None => Ok(()),
        Some((i, g, w, e)) => Err(format!(
            "f32 mismatch at {i}: got {g}, want {w} (rel err {e:.3e} > {tol:.1e})"
        )),
    }
}

/// Compares u32 slices exactly.
///
/// # Errors
///
/// Describes the first mismatch and the total mismatch count.
pub fn check_u32s(got: &[u32], want: &[u32]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length mismatch: {} vs {}", got.len(), want.len()));
    }
    let mismatches: Vec<usize> = (0..got.len()).filter(|&i| got[i] != want[i]).collect();
    match mismatches.first() {
        None => Ok(()),
        Some(&i) => Err(format!(
            "u32 mismatch at {i}: got {}, want {} ({} total mismatches)",
            got[i],
            want[i],
            mismatches.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = Xorshift::new(42);
        let mut b = Xorshift::new(42);
        for _ in 0..1000 {
            let v = a.next_u32();
            assert_eq!(v, b.next_u32());
            assert_ne!(v, 0, "xorshift never yields zero from nonzero state");
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Xorshift::new(0);
        assert_ne!(r.next_u32(), 0);
    }

    #[test]
    fn f32_range_is_bounded() {
        let mut r = Xorshift::new(7);
        for _ in 0..1000 {
            let v = r.range_f32(5.0, 10.0);
            assert!((5.0..10.0).contains(&v));
        }
    }

    #[test]
    fn check_f32s_reports_worst() {
        assert!(check_f32s(&[1.0, 2.0], &[1.0, 2.0], 1e-6).is_ok());
        let err = check_f32s(&[1.0, 2.5], &[1.0, 2.0], 1e-3).unwrap_err();
        assert!(err.contains("at 1"));
        assert!(check_f32s(&[1.0], &[1.0, 2.0], 1e-3).is_err());
        assert!(check_f32s(&[f32::NAN], &[1.0], 1e-3).is_err());
    }

    #[test]
    fn check_u32s_counts_mismatches() {
        assert!(check_u32s(&[1, 2, 3], &[1, 2, 3]).is_ok());
        let err = check_u32s(&[1, 9, 9], &[1, 2, 3]).unwrap_err();
        assert!(err.contains("2 total"));
    }
}

//! SimpleConvolution (SC) — 3×3 integer convolution over an image. Its
//! neighbourhood reads are highly cache-friendly and largely shared
//! between redundant threads, which is how the paper explains SC's RMT
//! *speedups* (reduced contention + slipstream prefetching, Sections 6.4
//! and 7.4).
//!
//! Buffers: `[0]` input image (u32), `[1]` output image.

use crate::util::{check_u32s, Xorshift};
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Arg, Device, LaunchConfig};
use rmt_ir::{Kernel, KernelBuilder, Reg, Ty};

/// See module docs.
pub struct SimpleConvolution;

/// 3×3 kernel weights (integer box-ish blur, normalized by shift).
const MASK: [[u32; 3]; 3] = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];
const NORM_SHIFT: u32 = 4; // divide by 16

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Small => (64, 32),
        Scale::Paper => (256, 128),
        Scale::Large => (512, 256),
    }
}

fn make_input(scale: Scale) -> Vec<u32> {
    let (w, h) = dims(scale);
    let mut rng = Xorshift::new(0x5C0C_0DE5);
    (0..w * h).map(|_| rng.below(256)).collect()
}

fn cpu_conv(input: &[u32], w: usize, h: usize) -> Vec<u32> {
    let mut out = vec![0u32; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0u32;
            for (dy, row) in MASK.iter().enumerate() {
                for (dx, &m) in row.iter().enumerate() {
                    // Clamped borders.
                    let sx = (x + dx).saturating_sub(1).min(w - 1);
                    let sy = (y + dy).saturating_sub(1).min(h - 1);
                    acc = acc.wrapping_add(input[sy * w + sx].wrapping_mul(m));
                }
            }
            out[y * w + x] = acc >> NORM_SHIFT;
        }
    }
    out
}

impl Benchmark for SimpleConvolution {
    fn name(&self) -> &'static str {
        "SimpleConvolution"
    }

    fn abbrev(&self) -> &'static str {
        "SC"
    }

    fn kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new("simple_convolution");
        let inp = b.buffer_param("in");
        let out = b.buffer_param("out");
        let w = b.scalar_param("w", Ty::U32);
        let h = b.scalar_param("h", Ty::U32);
        let x = b.global_id(0);
        let y = b.global_id(1);
        let one = b.const_u32(1);
        let zero = b.const_u32(0);
        let wm1 = b.sub_u32(w, one);
        let hm1 = b.sub_u32(h, one);

        // Clamp helper: min(max(c + d - 1, 0), limit) using the trick
        // saturating_sub on unsigned: (c + d).saturating_sub(1) == max with
        // wrapping avoided because c + d >= 0 always; emulate with select.
        let clamp = |b: &mut KernelBuilder, c: Reg, d: u32, limit: Reg| -> Reg {
            let dc = b.const_u32(d);
            let sum = b.add_u32(c, dc);
            let is_zero = b.eq_u32(sum, zero);
            let sum_m1 = b.sub_u32(sum, one);
            let lo = b.select(is_zero, zero, sum_m1);
            b.min_u32(lo, limit)
        };

        let mut acc = zero;
        for (dy, row) in MASK.iter().enumerate() {
            for (dx, &m) in row.iter().enumerate() {
                let sx = clamp(&mut b, x, dx as u32, wm1);
                let sy = clamp(&mut b, y, dy as u32, hm1);
                let rowb = b.mul_u32(sy, w);
                let idx = b.add_u32(rowb, sx);
                let a = b.elem_addr(inp, idx);
                let v = b.load_global(a);
                let mc = b.const_u32(m);
                let t = b.mul_u32(v, mc);
                acc = b.add_u32(acc, t);
            }
        }
        let shift = b.const_u32(NORM_SHIFT);
        let res = b.shr_u32(acc, shift);
        let rowb = b.mul_u32(y, w);
        let idx = b.add_u32(rowb, x);
        let oa = b.elem_addr(out, idx);
        b.store_global(oa, res);
        let _ = h; // bound via hm1
        b.finish()
    }

    fn plan(&self, scale: Scale, dev: &mut Device) -> Plan {
        let (w, h) = dims(scale);
        let input = make_input(scale);
        let ib = dev.create_buffer((w * h * 4) as u32);
        let ob = dev.create_buffer((w * h * 4) as u32);
        dev.write_u32s(ib, &input);
        Plan {
            passes: vec![LaunchConfig::new([w, h, 1], [32, 4, 1])
                .arg(Arg::Buffer(ib))
                .arg(Arg::Buffer(ob))
                .arg(Arg::U32(w as u32))
                .arg(Arg::U32(h as u32))],
            buffers: vec![ib, ob],
        }
    }

    fn verify(&self, scale: Scale, dev: &Device, plan: &Plan) -> Result<(), String> {
        let (w, h) = dims(scale);
        let want = cpu_conv(&make_input(scale), w, h);
        check_u32s(&dev.read_u32s(plan.buffers[1]), &want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_original, run_rmt};
    use gcn_sim::DeviceConfig;
    use rmt_core::TransformOptions;

    #[test]
    fn original_convolves() {
        run_original(
            &SimpleConvolution,
            Scale::Small,
            &DeviceConfig::small_test(),
            &|c| c,
        )
        .unwrap();
    }

    #[test]
    fn rmt_convolves() {
        for opts in [
            TransformOptions::intra_minus_lds(),
            TransformOptions::inter(),
        ] {
            let r = run_rmt(
                &SimpleConvolution,
                Scale::Small,
                &DeviceConfig::small_test(),
                &opts,
            )
            .unwrap();
            assert_eq!(r.detections, 0);
        }
    }

    #[test]
    fn cpu_reference_blurs_flat_image_to_itself() {
        let img = vec![16u32; 8 * 8];
        let out = cpu_conv(&img, 8, 8);
        assert!(out.iter().all(|&v| v == 16));
    }
}

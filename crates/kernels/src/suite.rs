//! Benchmark registry and run drivers.

use crate::stats::AggregateStats;
use crate::{Benchmark, Plan, Scale};
use gcn_sim::{Device, DeviceConfig, LaunchConfig, SimError};
use rmt_core::{transform, RmtError, RmtLauncher, TransformOptions};
use std::error::Error;
use std::fmt;

/// Errors from running a benchmark end-to-end.
#[derive(Debug)]
pub enum SuiteError {
    /// The simulator failed.
    Sim(SimError),
    /// RMT transform or launch failed.
    Rmt(RmtError),
    /// Device results did not match the CPU reference.
    Verify {
        /// Benchmark abbreviation.
        bench: &'static str,
        /// Mismatch description.
        detail: String,
    },
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::Sim(e) => write!(f, "simulator: {e}"),
            SuiteError::Rmt(e) => write!(f, "rmt: {e}"),
            SuiteError::Verify { bench, detail } => {
                write!(f, "{bench} verification failed: {detail}")
            }
        }
    }
}

impl Error for SuiteError {}

impl From<SimError> for SuiteError {
    fn from(e: SimError) -> Self {
        SuiteError::Sim(e)
    }
}

impl From<RmtError> for SuiteError {
    fn from(e: RmtError) -> Self {
        SuiteError::Rmt(e)
    }
}

/// Outcome of a verified benchmark run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Aggregated statistics over all passes.
    pub stats: AggregateStats,
    /// Error detections reported by RMT (0 for original runs, and for
    /// fault-free RMT runs).
    pub detections: u32,
}

/// All 16 benchmarks, in the paper's figure order.
pub fn all() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(crate::binary_search::BinarySearch),
        Box::new(crate::binomial_option::BinomialOption),
        Box::new(crate::bitonic_sort::BitonicSort),
        Box::new(crate::black_scholes::BlackScholes),
        Box::new(crate::dct::Dct),
        Box::new(crate::dwt_haar::DwtHaar1d),
        Box::new(crate::fast_walsh::FastWalshTransform),
        Box::new(crate::floyd_warshall::FloydWarshall),
        Box::new(crate::matmul::MatrixMultiplication),
        Box::new(crate::nbody::NBody),
        Box::new(crate::prefix_sum::PrefixSum),
        Box::new(crate::quasi_random::QuasiRandomSequence),
        Box::new(crate::reduction::Reduction),
        Box::new(crate::convolution::SimpleConvolution),
        Box::new(crate::sobel::SobelFilter),
        Box::new(crate::urng::Urng),
    ]
}

/// Looks a benchmark up by its paper abbreviation (case-insensitive).
pub fn by_abbrev(abbrev: &str) -> Option<Box<dyn Benchmark>> {
    all()
        .into_iter()
        .find(|b| b.abbrev().eq_ignore_ascii_case(abbrev))
}

/// Runs the original (untransformed) benchmark, verifying results.
/// `modify` can adjust each pass's launch (used by the decomposition
/// experiments to cap occupancy); use `|c| c` for a plain run.
///
/// # Errors
///
/// Simulator failures and verification mismatches.
pub fn run_original(
    bench: &dyn Benchmark,
    scale: Scale,
    dev_cfg: &DeviceConfig,
    modify: &dyn Fn(LaunchConfig) -> LaunchConfig,
) -> Result<RunOutcome, SuiteError> {
    let mut dev = Device::new(dev_cfg.clone());
    let plan = bench.plan(scale, &mut dev);
    let compiled = dev.compile(&bench.kernel())?;
    let mut agg = AggregateStats::new();
    for pass in &plan.passes {
        let cfg = modify(pass.clone());
        let stats = dev.launch_compiled(&compiled, &cfg)?;
        agg.add(&stats);
    }
    verify(bench, scale, &dev, &plan)?;
    Ok(RunOutcome {
        stats: agg,
        detections: 0,
    })
}

/// Runs the RMT-transformed benchmark, verifying results against the CPU
/// reference (which also proves the transform preserved semantics).
///
/// # Errors
///
/// Transform, launch, and verification failures.
pub fn run_rmt(
    bench: &dyn Benchmark,
    scale: Scale,
    dev_cfg: &DeviceConfig,
    opts: &TransformOptions,
) -> Result<RunOutcome, SuiteError> {
    let rk = transform(&bench.kernel(), opts)?;
    let mut dev = Device::new(dev_cfg.clone());
    let plan = bench.plan(scale, &mut dev);
    let mut launcher = RmtLauncher::new();
    let mut agg = AggregateStats::new();
    let mut detections = 0;
    for pass in &plan.passes {
        let run = launcher.launch(&mut dev, &rk, pass)?;
        detections += run.detections;
        agg.add(&run.stats);
    }
    verify(bench, scale, &dev, &plan)?;
    Ok(RunOutcome {
        stats: agg,
        detections,
    })
}

/// Like [`run_original`], with cycle-attributed profiling enabled on
/// every pass. Per-pass [`gcn_sim::Profile`]s are accumulated into one
/// (wall ticks concatenate, category and per-PC counters add), so the
/// conservation invariant still holds on the returned profile.
///
/// # Errors
///
/// Simulator failures and verification mismatches.
pub fn run_original_profiled(
    bench: &dyn Benchmark,
    scale: Scale,
    dev_cfg: &DeviceConfig,
    pcfg: &gcn_sim::ProfileConfig,
) -> Result<(RunOutcome, gcn_sim::Profile), SuiteError> {
    let mut dev = Device::new(dev_cfg.clone());
    let plan = bench.plan(scale, &mut dev);
    let compiled = dev.compile(&bench.kernel())?;
    let mut agg = AggregateStats::new();
    let mut acc: Option<gcn_sim::Profile> = None;
    for pass in &plan.passes {
        let (stats, profile) = dev.launch_compiled_profiled(&compiled, pass, pcfg.clone())?;
        agg.add(&stats);
        match &mut acc {
            Some(a) => a.accumulate(&profile),
            None => acc = Some(profile),
        }
    }
    verify(bench, scale, &dev, &plan)?;
    Ok((
        RunOutcome {
            stats: agg,
            detections: 0,
        },
        acc.expect("benchmarks have at least one pass"),
    ))
}

/// Like [`run_rmt`], with cycle-attributed profiling enabled on every
/// pass. Also returns the transformed kernel so callers can decompose
/// the profile with [`rmt_core::split_cycles`] without re-running the
/// transform.
///
/// # Errors
///
/// Transform, launch, and verification failures.
pub fn run_rmt_profiled(
    bench: &dyn Benchmark,
    scale: Scale,
    dev_cfg: &DeviceConfig,
    opts: &TransformOptions,
    pcfg: &gcn_sim::ProfileConfig,
) -> Result<(RunOutcome, gcn_sim::Profile, rmt_core::RmtKernel), SuiteError> {
    let rk = transform(&bench.kernel(), opts)?;
    let mut dev = Device::new(dev_cfg.clone());
    let plan = bench.plan(scale, &mut dev);
    let mut launcher = RmtLauncher::new();
    let mut agg = AggregateStats::new();
    let mut detections = 0;
    let mut acc: Option<gcn_sim::Profile> = None;
    for pass in &plan.passes {
        let (run, profile) = launcher.launch_profiled(&mut dev, &rk, pass, pcfg.clone())?;
        detections += run.detections;
        agg.add(&run.stats);
        match &mut acc {
            Some(a) => a.accumulate(&profile),
            None => acc = Some(profile),
        }
    }
    verify(bench, scale, &dev, &plan)?;
    Ok((
        RunOutcome {
            stats: agg,
            detections,
        },
        acc.expect("benchmarks have at least one pass"),
        rk,
    ))
}

/// Runs the naive full-duplication baseline the paper's related work
/// discusses (Dimitrov et al.): execute the entire kernel launch twice on
/// independent state and let the *host* compare every buffer afterwards.
/// Simulated cost is the sum of both launches; host-side comparison time
/// is not simulated (it is off-GPU), mirroring how the paper accounts
/// kernel time. Detections count mismatching buffer words.
///
/// # Errors
///
/// Simulator failures and verification mismatches (primary copy).
pub fn run_duplicated(
    bench: &dyn Benchmark,
    scale: Scale,
    dev_cfg: &DeviceConfig,
) -> Result<RunOutcome, SuiteError> {
    let kernel = bench.kernel();
    let mut agg = AggregateStats::new();

    let run_copy = |agg: &mut AggregateStats| -> Result<(Device, Plan), SuiteError> {
        let mut dev = Device::new(dev_cfg.clone());
        let plan = bench.plan(scale, &mut dev);
        let compiled = dev.compile(&kernel)?;
        for pass in &plan.passes {
            let stats = dev.launch_compiled(&compiled, pass)?;
            agg.add(&stats);
        }
        Ok((dev, plan))
    };
    let (dev_a, plan_a) = run_copy(&mut agg)?;
    let (dev_b, plan_b) = run_copy(&mut agg)?;

    // Host-side output comparison over every buffer.
    let mut detections = 0u32;
    for (a, b) in plan_a.buffers.iter().zip(&plan_b.buffers) {
        let ba = dev_a.read_buffer(*a);
        let bb = dev_b.read_buffer(*b);
        detections += ba.iter().zip(&bb).filter(|(x, y)| x != y).count() as u32;
    }
    verify(bench, scale, &dev_a, &plan_a)?;
    Ok(RunOutcome {
        stats: agg,
        detections,
    })
}

fn verify(
    bench: &dyn Benchmark,
    scale: Scale,
    dev: &Device,
    plan: &Plan,
) -> Result<(), SuiteError> {
    bench
        .verify(scale, dev, plan)
        .map_err(|detail| SuiteError::Verify {
            bench: bench.abbrev(),
            detail,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_sixteen() {
        let v = all();
        assert_eq!(v.len(), 16);
        let abbrevs: Vec<&str> = v.iter().map(|b| b.abbrev()).collect();
        for a in [
            "BinS", "BO", "BitS", "BlkSch", "DCT", "DWT", "FWT", "FW", "MM", "NB", "PS", "QRS",
            "R", "SC", "SF", "URNG",
        ] {
            assert!(abbrevs.contains(&a), "missing {a}");
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_abbrev("bins").is_some());
        assert!(by_abbrev("BLKSCH").is_some());
        assert!(by_abbrev("nope").is_none());
    }
}

//! Golden stall-breakdown snapshot: pins the profiler's full
//! category-attribution output for three representative kernels under
//! three flavors.
//!
//! The watermark attribution inside the interpreter is easy to break
//! silently — a missed segment shifts ticks between categories while the
//! conservation invariant still holds (the remainder lands in a
//! neighboring bucket, not in thin air). Pinning the rendered breakdown
//! bit-for-bit catches exactly that class of regression.
//!
//! To regenerate after an intentional machine-model or attribution
//! change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p rmt-kernels --test golden_profile
//! ```

use gcn_sim::ProfileConfig;
use gcn_sim::{DeviceConfig, SimEngine};
use rmt_core::TransformOptions;
use rmt_kernels::{by_abbrev, run_original_profiled, run_rmt_profiled, Scale};

const SNAP_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_profile.snap");

fn snapshot(engine: SimEngine) -> String {
    let mut dev = DeviceConfig::radeon_hd_7790();
    dev.engine = engine;
    // Breakdown only — timelines are pinned indirectly through the wall
    // ticks and would bloat the snapshot.
    let pcfg = ProfileConfig { sample_interval: 0 };
    let flavors: [(&str, Option<TransformOptions>); 3] = [
        ("Original", None),
        ("Intra+LDS", Some(TransformOptions::intra_plus_lds())),
        ("Inter", Some(TransformOptions::inter())),
    ];
    let mut out = String::new();
    for abbrev in ["R", "MM", "PS"] {
        let b = by_abbrev(abbrev).expect("known benchmark");
        for (name, opts) in &flavors {
            let profile = match opts {
                None => {
                    run_original_profiled(b.as_ref(), Scale::Small, &dev, &pcfg).map(|(_, p)| p)
                }
                Some(o) => {
                    run_rmt_profiled(b.as_ref(), Scale::Small, &dev, o, &pcfg).map(|(_, p, _)| p)
                }
            }
            .unwrap_or_else(|e| panic!("{abbrev} {name}: {e}"));
            profile
                .check_conservation()
                .unwrap_or_else(|e| panic!("{abbrev} {name}: {e}"));
            out.push_str(&format!("== {abbrev} {name} ==\n{}\n", profile.render()));
        }
    }
    out
}

#[test]
fn stall_breakdown_matches_golden_snapshot() {
    let got = snapshot(SimEngine::Event);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(SNAP_PATH, &got).expect("write golden snapshot");
        return;
    }
    assert_matches_snapshot(&got);
}

/// The lock-step reference engine must reproduce the SAME committed
/// snapshot, bit for bit — never regenerated from this test
/// (`UPDATE_GOLDEN` only writes from the event engine above).
#[test]
fn stall_breakdown_matches_golden_snapshot_lockstep() {
    assert_matches_snapshot(&snapshot(SimEngine::LockStep));
}

fn assert_matches_snapshot(got: &str) {
    let want = std::fs::read_to_string(SNAP_PATH).expect(
        "golden snapshot missing; create it with \
         UPDATE_GOLDEN=1 cargo test -p rmt-kernels --test golden_profile",
    );
    if got != want {
        let mismatch = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w);
        match mismatch {
            Some((i, (g, w))) => panic!(
                "stall breakdown diverged from the golden snapshot at line {}:\n  \
                 got:  {g}\n  want: {w}\n\
                 (if intended, regenerate with UPDATE_GOLDEN=1)",
                i + 1
            ),
            None => panic!(
                "stall breakdown diverged from the golden snapshot (length only: \
                 {} vs {} bytes); if intended, regenerate with UPDATE_GOLDEN=1",
                got.len(),
                want.len()
            ),
        }
    }
}

//! Golden-counter snapshot: pins the simulator's full performance-counter
//! output for three representative kernels under three flavors.
//!
//! The interpreter's hot paths get optimized over time (operand
//! pre-decode, full-mask fast paths, scratch-buffer reuse); this test is
//! the proof such rewrites are *semantics-preserving*: every counter the
//! machine model exposes — cycles, busy ticks, cache transactions, bytes
//! moved, LDS conflicts — must stay bit-identical to the checked-in
//! snapshot.
//!
//! To regenerate after an intentional machine-model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p rmt-kernels --test golden_counters
//! ```

use gcn_sim::{DeviceConfig, SimEngine};
use rmt_core::TransformOptions;
use rmt_kernels::{by_abbrev, run_original, run_rmt, Scale};

const SNAP_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_counters.snap");

fn snapshot(engine: SimEngine) -> String {
    let mut dev = DeviceConfig::radeon_hd_7790();
    dev.engine = engine;
    let flavors: [(&str, Option<TransformOptions>); 3] = [
        ("Original", None),
        ("Intra+LDS", Some(TransformOptions::intra_plus_lds())),
        ("Inter", Some(TransformOptions::inter())),
    ];
    // FWT (butterfly LDS traffic) and BlkSch (transcendental-bound) pin
    // only the Inter flavor: its cross-group comm protocol exercises
    // counter paths (global polling, ticket traffic) the intra flavors
    // never touch.
    let inter_only: [(&str, Option<TransformOptions>); 1] =
        [("Inter", Some(TransformOptions::inter()))];
    let mut out = String::new();
    for abbrev in ["R", "MM", "PS", "FWT", "BlkSch"] {
        let b = by_abbrev(abbrev).expect("known benchmark");
        let flavors: &[(&str, Option<TransformOptions>)] = if matches!(abbrev, "FWT" | "BlkSch") {
            &inter_only
        } else {
            &flavors
        };
        for (name, opts) in flavors {
            let run = match opts {
                None => run_original(b.as_ref(), Scale::Small, &dev, &|c| c),
                Some(o) => run_rmt(b.as_ref(), Scale::Small, &dev, o),
            }
            .unwrap_or_else(|e| panic!("{abbrev} {name}: {e}"));
            out.push_str(&format!(
                "== {abbrev} {name} (cycles {}) ==\n{:#?}\n\n",
                run.stats.cycles, run.stats.counters
            ));
        }
    }
    out
}

#[test]
fn counters_match_golden_snapshot() {
    let got = snapshot(SimEngine::Event);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(SNAP_PATH, &got).expect("write golden snapshot");
        return;
    }
    assert_matches_snapshot(&got);
}

/// The lock-step reference engine must reproduce the SAME committed
/// snapshot, bit for bit — never regenerated from this test
/// (`UPDATE_GOLDEN` only writes from the event engine above).
#[test]
fn counters_match_golden_snapshot_lockstep() {
    assert_matches_snapshot(&snapshot(SimEngine::LockStep));
}

fn assert_matches_snapshot(got: &str) {
    let want = std::fs::read_to_string(SNAP_PATH).expect(
        "golden snapshot missing; create it with \
         UPDATE_GOLDEN=1 cargo test -p rmt-kernels --test golden_counters",
    );
    if got != want {
        let mismatch = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w);
        match mismatch {
            Some((i, (g, w))) => panic!(
                "counters diverged from the golden snapshot at line {}:\n  \
                 got:  {g}\n  want: {w}\n\
                 (if intended, regenerate with UPDATE_GOLDEN=1)",
                i + 1
            ),
            None => panic!(
                "counters diverged from the golden snapshot (length only: \
                 {} vs {} bytes); if intended, regenerate with UPDATE_GOLDEN=1",
                got.len(),
                want.len()
            ),
        }
    }
}

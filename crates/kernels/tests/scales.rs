//! Scaling tests: 2-D geometries under RMT doubling, and (ignored by
//! default) full paper/large-scale verification sweeps.
//!
//! Run the slow sweeps with:
//!
//! ```text
//! cargo test -p rmt-kernels --release --test scales -- --ignored
//! ```

use gcn_sim::DeviceConfig;
use rmt_core::TransformOptions;
use rmt_kernels::{all, by_abbrev, run_original, run_rmt, Scale};

#[test]
fn two_d_kernels_double_dimension_zero_under_intra() {
    // DCT ([8,8] locals), FW ([16,4]) and SC ([32,4]) exercise the 2-D
    // doubling path: local[0] doubles, local[1] is untouched.
    let cfg = DeviceConfig::small_test();
    for abbrev in ["DCT", "FW", "SC", "MM", "SF"] {
        let b = by_abbrev(abbrev).unwrap();
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::intra_plus_lds().with_swizzle(),
        ] {
            let run = run_rmt(b.as_ref(), Scale::Small, &cfg, &opts)
                .unwrap_or_else(|e| panic!("{abbrev} {opts:?}: {e}"));
            assert_eq!(run.detections, 0, "{abbrev} {opts:?}");
        }
    }
}

#[test]
fn inter_handles_2d_group_delinearization() {
    // The inter transform halves the dimension-0 group count and
    // re-derives 2-D group coordinates from the ticket.
    let cfg = DeviceConfig::small_test();
    for abbrev in ["DCT", "FW", "SC"] {
        let b = by_abbrev(abbrev).unwrap();
        let run = run_rmt(b.as_ref(), Scale::Small, &cfg, &TransformOptions::inter())
            .unwrap_or_else(|e| panic!("{abbrev}: {e}"));
        assert_eq!(run.detections, 0, "{abbrev}");
    }
}

#[test]
#[ignore = "slow: full paper-scale original sweep (~1 min release)"]
fn paper_scale_originals_verify() {
    let cfg = DeviceConfig::radeon_hd_7790();
    for b in all() {
        run_original(b.as_ref(), Scale::Paper, &cfg, &|c| c)
            .unwrap_or_else(|e| panic!("{}: {e}", b.abbrev()));
    }
}

#[test]
#[ignore = "slow: full paper-scale RMT sweep (~5 min release)"]
fn paper_scale_rmt_verifies() {
    let cfg = DeviceConfig::radeon_hd_7790();
    for b in all() {
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::inter(),
        ] {
            let run = run_rmt(b.as_ref(), Scale::Paper, &cfg, &opts)
                .unwrap_or_else(|e| panic!("{} {opts:?}: {e}", b.abbrev()));
            assert_eq!(run.detections, 0, "{} {opts:?}", b.abbrev());
        }
    }
}

#[test]
#[ignore = "slow: large-scale spot checks (~5 min release)"]
fn large_scale_spot_checks_verify() {
    let cfg = DeviceConfig::radeon_hd_7790();
    for abbrev in ["BlkSch", "R", "SC", "URNG"] {
        let b = by_abbrev(abbrev).unwrap();
        run_original(b.as_ref(), Scale::Large, &cfg, &|c| c)
            .unwrap_or_else(|e| panic!("{abbrev}: {e}"));
        let run = run_rmt(
            b.as_ref(),
            Scale::Large,
            &cfg,
            &TransformOptions::intra_plus_lds(),
        )
        .unwrap_or_else(|e| panic!("{abbrev}: {e}"));
        assert_eq!(run.detections, 0, "{abbrev}");
    }
}

#[test]
#[ignore = "slow: paper-scale character regression (~1 min release)"]
fn workload_characters_match_the_paper() {
    // Pin the Figure 3 clusters: if a kernel drifts out of its class
    // (e.g. an input-size change makes BitS L2-resident), the figures
    // silently lose their meaning. This test makes that drift loud.
    let cfg = DeviceConfig::radeon_hd_7790();
    let memory_bound = ["BinS", "BitS", "FWT"];
    let compute_bound = ["BlkSch", "QRS", "URNG", "DCT"];
    for abbrev in memory_bound {
        let b = by_abbrev(abbrev).unwrap();
        let run = run_original(b.as_ref(), Scale::Paper, &cfg, &|c| c).unwrap();
        let c = &run.stats.counters;
        assert!(
            c.memory_boundedness() > 1.0,
            "{abbrev} must be memory-bound: mem {:.1}% vs valu {:.1}%",
            c.mem_unit_busy_pct(),
            c.valu_busy_pct()
        );
    }
    for abbrev in compute_bound {
        let b = by_abbrev(abbrev).unwrap();
        let run = run_original(b.as_ref(), Scale::Paper, &cfg, &|c| c).unwrap();
        let c = &run.stats.counters;
        assert!(
            c.memory_boundedness() < 1.0,
            "{abbrev} must be compute-bound: valu {:.1}% vs mem {:.1}%",
            c.valu_busy_pct(),
            c.mem_unit_busy_pct()
        );
    }
    // BO is the LDS-bound outlier (Section 6.4).
    let bo = by_abbrev("BO").unwrap();
    let run = run_original(bo.as_ref(), Scale::Paper, &cfg, &|c| c).unwrap();
    let c = &run.stats.counters;
    assert!(
        c.lds_busy_pct() > c.mem_unit_busy_pct(),
        "BO must be LDS-bound: lds {:.1}% vs mem {:.1}%",
        c.lds_busy_pct(),
        c.mem_unit_busy_pct()
    );
    // NB and PS under-utilize the device (Section 7.4).
    for abbrev in ["NB", "PS"] {
        let b = by_abbrev(abbrev).unwrap();
        let run = run_original(b.as_ref(), Scale::Paper, &cfg, &|c| c).unwrap();
        let groups = run.stats.counters.groups_executed as usize;
        let capacity = cfg.num_cus * run.stats.occupancy.map(|o| o.groups_per_cu).unwrap_or(1);
        assert!(
            groups < capacity.max(cfg.num_cus * 2),
            "{abbrev} must under-utilize: {groups} groups vs capacity {capacity}"
        );
    }
}

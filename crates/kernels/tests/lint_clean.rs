//! Every suite kernel must lint clean — as written, and under every RMT
//! transform flavor. This is the end-to-end soundness check for both the
//! lint framework (no false positives on 80 real kernel variants) and the
//! transforms (they introduce no races, divergent barriers, or
//! out-of-bounds LDS traffic).

use gcn_sim::{Device, DeviceConfig};
use rmt_core::{transform, TransformOptions};
use rmt_ir::analysis::lint::{lint_kernel, LintAssumptions, LintConfig};
use rmt_kernels::{all, Scale};

/// Launch-shape variants to lint each benchmark under.
fn variants() -> Vec<(&'static str, Option<TransformOptions>)> {
    vec![
        ("Original", None),
        ("Intra+LDS", Some(TransformOptions::intra_plus_lds())),
        ("Intra-LDS", Some(TransformOptions::intra_minus_lds())),
        ("Inter", Some(TransformOptions::inter())),
        (
            "FAST",
            Some(TransformOptions::intra_plus_lds().with_swizzle()),
        ),
    ]
}

/// Distinct per-pass work-group shapes of a benchmark's plan, with
/// dimension 0 doubled for intra-group flavors (mirroring the launcher).
fn shapes(bench: &dyn rmt_kernels::Benchmark, double_dim0: bool) -> Vec<[usize; 3]> {
    let mut dev = Device::new(DeviceConfig::default());
    let plan = bench.plan(Scale::Small, &mut dev);
    let mut shapes: Vec<[usize; 3]> = Vec::new();
    for pass in &plan.passes {
        let mut local = pass.local;
        if double_dim0 {
            local[0] *= 2;
        }
        if !shapes.contains(&local) {
            shapes.push(local);
        }
    }
    shapes
}

fn assumptions(local: [usize; 3]) -> LintAssumptions {
    LintAssumptions {
        local_size: [
            Some(local[0] as u32),
            Some(local[1] as u32),
            Some(local[2] as u32),
        ],
        wavefront: 64,
    }
}

#[test]
fn suite_kernels_lint_clean_under_all_flavors() {
    let mut failures = Vec::new();
    for bench in all() {
        for (label, opts) in variants() {
            let kernel = match &opts {
                None => bench.kernel(),
                Some(o) => match transform(&bench.kernel(), o) {
                    Ok(rk) => rk.kernel,
                    Err(e) => {
                        failures.push(format!("{} {label}: transform failed: {e}", bench.abbrev()));
                        continue;
                    }
                },
            };
            let doubles = matches!(
                &opts,
                Some(o) if o.flavor != rmt_core::RmtFlavor::Inter
            );
            for local in shapes(bench.as_ref(), doubles) {
                let cfg = LintConfig::with_assumptions(assumptions(local));
                let diags = lint_kernel(&kernel, &cfg);
                for d in diags {
                    failures.push(format!(
                        "{} {label} (local {:?}): {d}",
                        bench.abbrev(),
                        local
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "lint diagnostics on suite kernels:\n{}",
        failures.join("\n")
    );
}

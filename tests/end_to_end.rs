//! Cross-crate integration: the full pipeline through the facade crate —
//! benchmark suite → RMT transforms → simulator → verification.

use gpu_rmt::kernels::{all, by_abbrev, run_original, run_rmt, Scale};
use gpu_rmt::rmt::{RmtFlavor, TransformOptions};
use gpu_rmt::sim::DeviceConfig;

#[test]
fn whole_suite_runs_and_verifies_original() {
    let cfg = DeviceConfig::small_test();
    for b in all() {
        let run = run_original(b.as_ref(), Scale::Small, &cfg, &|c| c)
            .unwrap_or_else(|e| panic!("{}: {e}", b.abbrev()));
        assert!(run.stats.cycles > 0, "{}", b.abbrev());
        assert_eq!(run.detections, 0);
    }
}

#[test]
fn whole_suite_runs_under_every_full_flavor() {
    let cfg = DeviceConfig::small_test();
    for b in all() {
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::intra_minus_lds(),
            TransformOptions::inter(),
            TransformOptions::intra_plus_lds().with_swizzle(),
            TransformOptions::intra_minus_lds().with_swizzle(),
        ] {
            let run = run_rmt(b.as_ref(), Scale::Small, &cfg, &opts)
                .unwrap_or_else(|e| panic!("{} under {opts:?}: {e}", b.abbrev()));
            assert_eq!(
                run.detections,
                0,
                "{} under {opts:?}: spurious detection",
                b.abbrev()
            );
        }
    }
}

#[test]
fn rmt_is_never_catastrophically_slow_at_small_scale() {
    // Guardrail on the cost model: full RMT stays within an order of
    // magnitude of the original for every suite kernel.
    let cfg = DeviceConfig::small_test();
    for b in all() {
        let base = run_original(b.as_ref(), Scale::Small, &cfg, &|c| c)
            .unwrap()
            .stats
            .cycles as f64;
        for flavor in RmtFlavor::ALL {
            let opts = TransformOptions {
                flavor,
                comm: gpu_rmt::rmt::CommMode::Lds,
                stage: gpu_rmt::rmt::Stage::Full,
            };
            let cycles = run_rmt(b.as_ref(), Scale::Small, &cfg, &opts)
                .unwrap()
                .stats
                .cycles as f64;
            let slowdown = cycles / base;
            assert!(
                slowdown < 40.0,
                "{} under {flavor:?}: {slowdown:.1}x",
                b.abbrev()
            );
        }
    }
}

#[test]
fn memory_bound_kernels_are_cheap_under_intra() {
    // The paper's headline Intra-Group finding, checked end-to-end.
    let cfg = DeviceConfig::radeon_hd_7790();
    for abbrev in ["BinS", "FWT"] {
        let b = by_abbrev(abbrev).unwrap();
        let base = run_original(b.as_ref(), Scale::Small, &cfg, &|c| c)
            .unwrap()
            .stats
            .cycles as f64;
        let rmt = run_rmt(
            b.as_ref(),
            Scale::Small,
            &cfg,
            &TransformOptions::intra_plus_lds(),
        )
        .unwrap()
        .stats
        .cycles as f64;
        assert!(
            rmt / base < 1.9,
            "{abbrev}: memory-bound kernel should hide redundancy, got {:.2}x",
            rmt / base
        );
    }
}

#[test]
fn compute_bound_kernels_pay_roughly_double_under_intra() {
    let cfg = DeviceConfig::radeon_hd_7790();
    for abbrev in ["URNG", "QRS"] {
        let b = by_abbrev(abbrev).unwrap();
        let base = run_original(b.as_ref(), Scale::Paper, &cfg, &|c| c)
            .unwrap()
            .stats
            .cycles as f64;
        let rmt = run_rmt(
            b.as_ref(),
            Scale::Paper,
            &cfg,
            &TransformOptions::intra_plus_lds(),
        )
        .unwrap()
        .stats
        .cycles as f64;
        let slowdown = rmt / base;
        assert!(
            (1.5..2.6).contains(&slowdown),
            "{abbrev}: expected ~2x, got {slowdown:.2}x"
        );
    }
}

#[test]
fn counters_flow_through_the_facade() {
    let cfg = DeviceConfig::small_test();
    let b = by_abbrev("R").unwrap();
    let run = run_original(b.as_ref(), Scale::Small, &cfg, &|c| c).unwrap();
    let c = &run.stats.counters;
    assert!(c.dyn_insts > 0);
    assert!(c.bytes_loaded > 0);
    assert!(c.lds_insts > 0, "reduction stages through the LDS");
    assert!(c.barrier_waits > 0);
    assert!(run.stats.power.unwrap().avg_watts > 0.0);
}

//! Property-based testing: for *arbitrary* generated kernels, every RMT
//! flavor must preserve the original kernel's observable results and
//! report zero detections in fault-free runs.
//!
//! This is the strongest statement the repository makes about the
//! transforms: not just the 16 suite kernels, but a randomized family of
//! kernels with ALU chains, divergent branches, LDS staging and barriers.

use gpu_rmt::ir::{Kernel, KernelBuilder, Reg};
use gpu_rmt::rmt::{launch_rmt, transform, TransformOptions};
use gpu_rmt::sim::{Arg, Device, DeviceConfig, LaunchConfig};
use proptest::prelude::*;

/// One step of straight-line computation over the value pool.
#[derive(Debug, Clone)]
enum Step {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Xor(usize, usize),
    Min(usize, usize),
    Max(usize, usize),
    SelectLt(usize, usize, usize),
    /// Divergent branch: pool[a] < pool[b] decides which constant mixes in.
    BranchMix(usize, usize, u32),
    /// Stage pool[a] through the LDS (store at lid, barrier, reload from a
    /// rotated slot).
    LdsRotate(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..8usize, 0..8usize).prop_map(|(a, b)| Step::Add(a, b)),
        (0..8usize, 0..8usize).prop_map(|(a, b)| Step::Sub(a, b)),
        (0..8usize, 0..8usize).prop_map(|(a, b)| Step::Mul(a, b)),
        (0..8usize, 0..8usize).prop_map(|(a, b)| Step::Xor(a, b)),
        (0..8usize, 0..8usize).prop_map(|(a, b)| Step::Min(a, b)),
        (0..8usize, 0..8usize).prop_map(|(a, b)| Step::Max(a, b)),
        (0..8usize, 0..8usize, 0..8usize).prop_map(|(a, b, c)| Step::SelectLt(a, b, c)),
        (0..8usize, 0..8usize, any::<u32>()).prop_map(|(a, b, k)| Step::BranchMix(a, b, k)),
        (0..8usize).prop_map(Step::LdsRotate),
    ]
}

/// Builds a kernel from generated steps: the value pool starts as
/// [gid, in[gid], constants...] and every step appends a value; the last
/// pool entry is stored to out[gid].
fn build_kernel(steps: &[Step]) -> Kernel {
    let mut b = KernelBuilder::new("generated");
    b.set_lds_bytes(64 * 4);
    let inp = b.buffer_param("in");
    let out = b.buffer_param("out");
    let gid = b.global_id(0);
    let lid = b.local_id(0);
    let ia = b.elem_addr(inp, gid);
    let v = b.load_global(ia);
    let c1 = b.const_u32(0x9E37_79B9);
    let c2 = b.const_u32(12345);
    let mut pool: Vec<Reg> = vec![gid, v, c1, c2];

    let four = b.const_u32(4);
    let one = b.const_u32(1);
    let ls = b.local_size(0);
    let get = |pool: &[Reg], i: usize| pool[i % pool.len()];

    for step in steps {
        let next = match *step {
            Step::Add(x, y) => b.add_u32(get(&pool, x), get(&pool, y)),
            Step::Sub(x, y) => b.sub_u32(get(&pool, x), get(&pool, y)),
            Step::Mul(x, y) => b.mul_u32(get(&pool, x), get(&pool, y)),
            Step::Xor(x, y) => b.xor_u32(get(&pool, x), get(&pool, y)),
            Step::Min(x, y) => b.min_u32(get(&pool, x), get(&pool, y)),
            Step::Max(x, y) => b.max_u32(get(&pool, x), get(&pool, y)),
            Step::SelectLt(x, y, z) => {
                let c = b.lt_u32(get(&pool, x), get(&pool, y));
                b.select(c, get(&pool, z), get(&pool, x))
            }
            Step::BranchMix(x, y, k) => {
                let c = b.lt_u32(get(&pool, x), get(&pool, y));
                let dst = b.fresh();
                let xv = get(&pool, x);
                b.mov_to(dst, xv);
                b.if_(c, |b| {
                    let kc = b.const_u32(k);
                    let mixed = b.xor_u32(xv, kc);
                    b.mov_to(dst, mixed);
                });
                dst
            }
            Step::LdsRotate(x) => {
                let lo = b.mul_u32(lid, four);
                let val = get(&pool, x);
                b.store_local(lo, val);
                b.barrier();
                let nxt = b.add_u32(lid, one);
                let wrapped = b.rem_u32(nxt, ls);
                let ro = b.mul_u32(wrapped, four);
                let loaded = b.load_local(ro);
                // Re-synchronize before the next possible LDS step.
                b.barrier();
                loaded
            }
        };
        pool.push(next);
    }
    let last = *pool.last().expect("pool never empty");
    let oa = b.elem_addr(out, gid);
    b.store_global(oa, last);
    b.finish()
}

fn run_kernel(kernel: &Kernel, rmt_opts: Option<TransformOptions>) -> Vec<u32> {
    const N: usize = 128;
    let mut dev = Device::new(DeviceConfig::small_test());
    let ib = dev.create_buffer((N * 4) as u32);
    let ob = dev.create_buffer((N * 4) as u32);
    dev.write_u32s(
        ib,
        &(0..N as u32)
            .map(|i| i.wrapping_mul(2654435761))
            .collect::<Vec<_>>(),
    );
    let cfg = LaunchConfig::new_1d(N, 64)
        .arg(Arg::Buffer(ib))
        .arg(Arg::Buffer(ob));
    match rmt_opts {
        None => {
            dev.launch(kernel, &cfg).expect("original runs");
        }
        Some(opts) => {
            let rk = transform(kernel, &opts).expect("transform succeeds");
            let run = launch_rmt(&mut dev, &rk, &cfg).expect("rmt runs");
            assert_eq!(run.detections, 0, "no faults injected, no detections");
        }
    }
    dev.read_u32s(ob)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs 9 simulated launches
        .. ProptestConfig::default()
    })]

    #[test]
    fn every_flavor_preserves_generated_kernels(
        steps in proptest::collection::vec(step_strategy(), 1..12)
    ) {
        let kernel = build_kernel(&steps);
        let golden = run_kernel(&kernel, None);
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::intra_minus_lds(),
            TransformOptions::inter(),
            TransformOptions::intra_plus_lds().with_swizzle(),
            TransformOptions::intra_minus_lds().with_swizzle(),
            TransformOptions::intra_plus_lds().without_comm(),
            TransformOptions::intra_minus_lds().without_comm(),
            TransformOptions::inter().without_comm(),
        ] {
            let got = run_kernel(&kernel, Some(opts));
            prop_assert_eq!(&got, &golden, "flavor {:?} diverged on {:?}", opts, steps);
        }
    }

    #[test]
    fn transformed_kernels_always_validate(
        steps in proptest::collection::vec(step_strategy(), 1..16)
    ) {
        let kernel = build_kernel(&steps);
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::intra_minus_lds(),
            TransformOptions::inter(),
        ] {
            let rk = transform(&kernel, &opts).expect("transform succeeds");
            prop_assert_eq!(gpu_rmt::ir::validate(&rk.kernel), Ok(()));
            // Structural invariants from the paper's algorithm:
            prop_assert!(rk.kernel.params.len() > kernel.params.len());
            prop_assert!(rk.kernel.total_insts() > kernel.total_insts());
        }
    }
}

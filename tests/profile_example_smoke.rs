//! Smoke test for the `--profile` path of `examples/compiler_diagnostics`:
//! drives the same facade-level calls the example makes and asserts the
//! profile is conserved and the cycle split is complete.

use gpu_rmt::kernels::{by_abbrev, run_rmt_profiled, Scale};
use gpu_rmt::rmt::{split_cycles, CycleBucket, TransformOptions};
use gpu_rmt::sim::{DeviceConfig, ProfileConfig};

#[test]
fn profiled_reduction_splits_into_overhead_buckets() {
    let b = by_abbrev("R").expect("Reduction exists");
    let (run, prof, rk) = run_rmt_profiled(
        b.as_ref(),
        Scale::Small,
        &DeviceConfig::radeon_hd_7790(),
        &TransformOptions::intra_plus_lds(),
        &ProfileConfig::default(),
    )
    .expect("profiled RMT run");
    assert_eq!(run.detections, 0, "fault-free run must not detect");
    prof.check_conservation().expect("slot conservation");

    // The split tiles exactly the wave-occupied ticks: nothing dropped,
    // nothing double-counted.
    let split = split_cycles(&rk, &prof);
    assert_eq!(split.total(), prof.occupied_ticks());
    assert!(split.original > 0, "user computation must appear");
    assert!(split.redundant > 0, "replica work must appear");
    assert!(split.detect_compare > 0, "compare machinery must appear");
    let pct_sum: f64 = [
        CycleBucket::Original,
        CycleBucket::Redundant,
        CycleBucket::DetectCompare,
        CycleBucket::Protocol,
    ]
    .iter()
    .map(|b| split.pct(*b))
    .sum();
    assert!((pct_sum - 100.0).abs() < 1e-6, "shares sum to 100%");

    // The breakdown the example prints names the full taxonomy.
    let render = prof.render();
    assert!(render.contains("issue-valu"));
    assert!(render.contains("stall-barrier"));
    assert!(render.contains("empty-slot"));
}

//! Compiler-facing view of the RMT pass: for every suite kernel, what each
//! flavor did to the code (instruction growth, register pressure, LDS
//! footprint, instrumented sphere-of-replication exits) — the diagnostics
//! a build system would log when "RMT-izing" a kernel, plus a full
//! profiler dump for one kernel.
//!
//! ```text
//! cargo run --release --example compiler_diagnostics [-- --jobs N] [-- --profile]
//! ```
//!
//! `--jobs N` fans the per-kernel transform work across N worker threads
//! (default: available parallelism); the printed diagnostics are identical
//! for any N. `--profile` appends a cycle-attributed profile of one
//! transformed kernel: the stall-taxonomy breakdown plus the
//! provenance-derived split of its cycles into original / redundant /
//! detect-compare / protocol work.

use gpu_rmt::ir::analysis::lint::{lint_kernel, LintAssumptions, LintConfig};
use gpu_rmt::ir::analysis::{Protection, Residency};
use gpu_rmt::ir::{Block, Inst, KernelBuilder, MemSpace};
use gpu_rmt::kernels::{all, by_abbrev, run_original, run_rmt_profiled, Scale};
use gpu_rmt::rmt::{
    coverage, split_cycles, transform, verify_rmt, CycleBucket, TransformOptions, TransformReport,
};
use gpu_rmt::sim::{DeviceConfig, ProfileConfig};

fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--jobs" {
            i += 1;
            match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => return n,
                _ => {
                    eprintln!("bad --jobs {:?}; using 1", args.get(i));
                    return 1;
                }
            }
        }
        i += 1;
    }
    gpu_rmt::sim::pool::default_jobs()
}

fn profile_requested() -> bool {
    std::env::args().skip(1).any(|a| a == "--profile")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs = jobs_from_args();
    println!(
        "{:<8} {:<18} {:>6} {:>7} {:>9} {:>9} {:>6}",
        "kernel", "flavor", "insts", "growth", "vgprs", "lds B", "exits"
    );
    // Transform every (kernel, flavor) cell across the worker pool; the
    // results come back in submission order, so output order is stable.
    let suite = all();
    let cells: Vec<_> = suite
        .iter()
        .flat_map(|b| {
            [
                TransformOptions::intra_plus_lds(),
                TransformOptions::intra_minus_lds(),
                TransformOptions::inter(),
                TransformOptions::selective(50),
            ]
            .map(|opts| (b.as_ref(), opts))
        })
        .collect();
    let lines = gpu_rmt::sim::pool::map(jobs, cells, |(b, opts)| {
        let kernel = b.kernel();
        let rk = transform(&kernel, &opts).map_err(|e| e.to_string())?;
        let r = TransformReport::new(&kernel, &rk);
        Ok::<_, String>(format!(
            "{:<8} {:<18} {:>2}->{:<3} {:>6.2}x {:>3}->{:<4} {:>3}->{:<5} {:>6}",
            b.abbrev(),
            r.flavor.to_string(),
            r.insts.0,
            r.insts.1,
            r.inst_growth(),
            r.pressure.0,
            r.pressure.1,
            r.lds_bytes.0,
            r.lds_bytes.1,
            r.total_exits(),
        ))
    });
    for line in lines {
        println!("{}", line?);
    }

    // A full single-kernel report + the profiler view of a run.
    let b = by_abbrev("R").expect("Reduction exists");
    let kernel = b.kernel();
    let rk = transform(&kernel, &TransformOptions::intra_minus_lds())?;
    println!("\n== detailed report ==\n");
    print!("{}", TransformReport::new(&kernel, &rk));

    println!("\n== profiler view of the original Reduction (paper scale) ==\n");
    let run = run_original(
        b.as_ref(),
        Scale::Paper,
        &DeviceConfig::radeon_hd_7790(),
        &|c| c,
    )?;
    print!("{}", run.stats.counters);

    // == static protection coverage ==
    //
    // The per-kernel report a compiler would print next to its transform
    // diagnostics: for each flavor, how every residency class of the
    // transformed kernel is protected, derived from the IR by the
    // coverage analysis (the same pass that regenerates Tables 2/3 and is
    // cross-validated by `repro coverage-static`).
    println!("\n== protection coverage of Reduction, per flavor ==\n");
    println!(
        "{:<18} {:>9} {:>4} {:>4} {:>4} {:>7}",
        "flavor", "residency", "D", "V", "M", "vuln%"
    );
    for opts in [
        TransformOptions::intra_plus_lds(),
        TransformOptions::intra_minus_lds(),
        TransformOptions::inter(),
        TransformOptions::intra_plus_lds().with_swizzle(),
        TransformOptions::selective(50),
    ] {
        let rk = transform(&kernel, &opts)?;
        let report = coverage::analyze(&rk);
        for res in Residency::ALL {
            let t = report.tallies(Some(res), false);
            if t.total() == 0 {
                continue;
            }
            println!(
                "{:<18} {:>9} {:>4} {:>4} {:>4} {:>6.1}%",
                opts.flavor.to_string(),
                res.label(),
                t.detected,
                t.vulnerable,
                t.masked,
                100.0 * t.vulnerability_fraction()
            );
        }
        // The heaviest vulnerable windows, with the analyzer's reasons —
        // where a compiler would point the user first.
        let mut vulns: Vec<_> = report
            .windows
            .iter()
            .filter(|w| !w.machinery && w.protection == Protection::Vulnerable)
            .collect();
        vulns.sort_by_key(|w| std::cmp::Reverse(w.weight));
        for w in vulns.iter().take(2) {
            println!(
                "    worst: r{} ({}, weight {}): {}",
                w.reg.0,
                w.residency.label(),
                w.weight,
                w.reason
            );
        }
    }

    // == static analysis: what the lint passes say about a buggy kernel ==
    //
    // A kernel in which every work-item writes its id to LDS byte 0, then
    // a barrier under a lane-dependent `if` — the two classic LDS bugs.
    println!("\n== lint diagnostics on a deliberately buggy kernel ==\n");
    let mut bld = KernelBuilder::new("buggy");
    bld.set_lds_bytes(64);
    let out = bld.buffer_param("out");
    let lid = bld.local_id(0);
    let zero = bld.const_u32(0);
    bld.store_local(zero, lid); // every work-item races on LDS byte 0
    bld.barrier();
    let v = bld.load_local(zero);
    let gid = bld.global_id(0);
    let sixteen = bld.const_u32(16);
    let c = bld.lt_u32(lid, sixteen);
    bld.if_(c, |b| b.barrier()); // divergent barrier
    let a = bld.elem_addr(out, gid);
    bld.store_global(a, v);
    let buggy = bld.finish();

    let cfg = LintConfig::with_assumptions(LintAssumptions {
        local_size: [Some(64), Some(1), Some(1)],
        wavefront: 64,
    });
    for d in lint_kernel(&buggy, &cfg) {
        println!("  {d}");
    }

    // == transform-invariant verifier ==
    //
    // The same machinery that runs as a debug assertion inside
    // `transform`: re-derive the RMT contract from the output IR. Strip
    // the detect-counter bumps from a transformed kernel and the verifier
    // reports exactly what was lost.
    println!("\n== RMT invariant verifier ==\n");
    let errs = verify_rmt(&kernel, &rk);
    println!("  intact transform: {} violations", errs.len());

    fn strip_atomics(b: &Block) -> Block {
        let mut insts = Vec::new();
        for inst in b.iter() {
            match inst {
                Inst::Atomic {
                    space: MemSpace::Global,
                    ..
                } => {}
                Inst::If {
                    cond,
                    then_blk,
                    else_blk,
                } => insts.push(Inst::If {
                    cond: *cond,
                    then_blk: strip_atomics(then_blk),
                    else_blk: strip_atomics(else_blk),
                }),
                Inst::While {
                    cond,
                    cond_reg,
                    body,
                } => insts.push(Inst::While {
                    cond: strip_atomics(cond),
                    cond_reg: *cond_reg,
                    body: strip_atomics(body),
                }),
                other => insts.push(other.clone()),
            }
        }
        Block(insts)
    }
    let mut tampered = rk.clone();
    tampered.kernel.body = strip_atomics(&tampered.kernel.body);
    for e in verify_rmt(&kernel, &tampered) {
        println!("  tampered (detect bumps removed): {e}");
    }

    // == --profile: where do the transformed kernel's cycles go? ==
    //
    // A profiled run of Reduction under Intra-Group+LDS: every wave-slot
    // tick attributed to a stall category, and the provenance tags used
    // to split the wave-occupied ticks into the paper's overhead buckets.
    if profile_requested() {
        println!("\n== cycle-attributed profile: Reduction / Intra+LDS (small scale) ==\n");
        let (_, prof, rk) = run_rmt_profiled(
            b.as_ref(),
            Scale::Small,
            &DeviceConfig::radeon_hd_7790(),
            &TransformOptions::intra_plus_lds(),
            &ProfileConfig::default(),
        )?;
        print!("{}", prof.render());
        let split = split_cycles(&rk, &prof);
        println!(
            "\nRMT cycle split: original {:.1}%, redundant {:.1}%, \
             detect-compare {:.1}%, protocol {:.1}%",
            split.pct(CycleBucket::Original),
            split.pct(CycleBucket::Redundant),
            split.pct(CycleBucket::DetectCompare),
            split.pct(CycleBucket::Protocol),
        );
    }
    Ok(())
}

//! Compiler-facing view of the RMT pass: for every suite kernel, what each
//! flavor did to the code (instruction growth, register pressure, LDS
//! footprint, instrumented sphere-of-replication exits) — the diagnostics
//! a build system would log when "RMT-izing" a kernel, plus a full
//! profiler dump for one kernel.
//!
//! ```text
//! cargo run --release --example compiler_diagnostics
//! ```

use gpu_rmt::kernels::{all, by_abbrev, run_original, Scale};
use gpu_rmt::rmt::{transform, TransformOptions, TransformReport};
use gpu_rmt::sim::DeviceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:<18} {:>6} {:>7} {:>9} {:>9} {:>6}",
        "kernel", "flavor", "insts", "growth", "vgprs", "lds B", "exits"
    );
    for b in all() {
        let kernel = b.kernel();
        for opts in [
            TransformOptions::intra_plus_lds(),
            TransformOptions::intra_minus_lds(),
            TransformOptions::inter(),
        ] {
            let rk = transform(&kernel, &opts)?;
            let r = TransformReport::new(&kernel, &rk);
            println!(
                "{:<8} {:<18} {:>2}->{:<3} {:>6.2}x {:>3}->{:<4} {:>3}->{:<5} {:>6}",
                b.abbrev(),
                r.flavor.to_string(),
                r.insts.0,
                r.insts.1,
                r.inst_growth(),
                r.pressure.0,
                r.pressure.1,
                r.lds_bytes.0,
                r.lds_bytes.1,
                r.total_exits(),
            );
        }
    }

    // A full single-kernel report + the profiler view of a run.
    let b = by_abbrev("R").expect("Reduction exists");
    let kernel = b.kernel();
    let rk = transform(&kernel, &TransformOptions::intra_minus_lds())?;
    println!("\n== detailed report ==\n");
    print!("{}", TransformReport::new(&kernel, &rk));

    println!("\n== profiler view of the original Reduction (paper scale) ==\n");
    let run = run_original(
        b.as_ref(),
        Scale::Paper,
        &DeviceConfig::radeon_hd_7790(),
        &|c| c,
    )?;
    print!("{}", run.stats.counters);
    Ok(())
}

//! Financial-workload scenario (the paper's motivation: HPC and financial
//! applications demand correctness): price a book of European options with
//! Black-Scholes and compare the cost of every protection level, from
//! unprotected to full Inter-Group RMT.
//!
//! ```text
//! cargo run --release --example black_scholes_rmt
//! ```

use gpu_rmt::kernels::{by_abbrev, run_original, run_rmt, Scale};
use gpu_rmt::rmt::TransformOptions;
use gpu_rmt::sim::DeviceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = by_abbrev("BlkSch").expect("BlackScholes is in the suite");
    let device = DeviceConfig::radeon_hd_7790();
    let scale = Scale::Paper;

    println!("Pricing a book of European options on the simulated HD 7790\n");
    let base = run_original(bench.as_ref(), scale, &device, &|c| c)?;
    println!(
        "{:<28} {:>9} cycles   {:>7}   avg {:>5.1} W",
        "unprotected",
        base.stats.cycles,
        "1.00x",
        base.stats.power.map(|p| p.avg_watts).unwrap_or(0.0)
    );

    let flavors = [
        ("Intra-Group+LDS", TransformOptions::intra_plus_lds()),
        ("Intra-Group-LDS", TransformOptions::intra_minus_lds()),
        (
            "Intra-Group+LDS (FAST)",
            TransformOptions::intra_plus_lds().with_swizzle(),
        ),
        ("Inter-Group", TransformOptions::inter()),
    ];
    for (name, opts) in flavors {
        let run = run_rmt(bench.as_ref(), scale, &device, &opts)?;
        println!(
            "{:<28} {:>9} cycles   {:>6.2}x   avg {:>5.1} W   detections {}",
            name,
            run.stats.cycles,
            run.stats.cycles as f64 / base.stats.cycles as f64,
            run.stats.power.map(|p| p.avg_watts).unwrap_or(0.0),
            run.detections
        );
    }

    println!(
        "\nEvery variant re-verified against the CPU reference pricer.\n\
         Note the paper's headline trade-off: larger spheres of replication\n\
         (Inter-Group covers the scalar unit and scheduler too) cost more."
    );
    Ok(())
}

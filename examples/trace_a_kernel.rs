//! Debugging workflow: trace one wavefront of an RMT-transformed kernel
//! and watch the redundant pair machinery execute — the ID remapping
//! prologue, the lockstep producer/consumer communication, and the
//! protected store.
//!
//! ```text
//! cargo run --release --example trace_a_kernel
//! ```

use gpu_rmt::ir::KernelBuilder;
use gpu_rmt::rmt::{transform, RmtLauncher, TransformOptions};
use gpu_rmt::sim::{Arg, Device, DeviceConfig, LaunchConfig, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // out[i] = in[i] ^ i
    let mut b = KernelBuilder::new("xor_id");
    let inp = b.buffer_param("in");
    let out = b.buffer_param("out");
    let gid = b.global_id(0);
    let ia = b.elem_addr(inp, gid);
    let v = b.load_global(ia);
    let w = b.xor_u32(v, gid);
    let oa = b.elem_addr(out, gid);
    b.store_global(oa, w);
    let kernel = b.finish();

    let rmt = transform(&kernel, &TransformOptions::intra_plus_lds())?;
    println!("== transformed kernel ==\n{}", rmt.kernel);

    // Trace wavefront 0 of work-group 0. The launcher normally hides the
    // geometry doubling; for tracing we drive the pieces by hand.
    let mut dev = Device::new(DeviceConfig::small_test());
    let ib = dev.create_buffer(128 * 4);
    let ob = dev.create_buffer(128 * 4);
    dev.write_u32s(ib, &(0..128).map(|i| i * 7).collect::<Vec<_>>());

    let base = LaunchConfig::new_1d(128, 64)
        .arg(Arg::Buffer(ib))
        .arg(Arg::Buffer(ob));
    let (global, local) = RmtLauncher::rmt_geometry(&dev, &rmt, &base)?;
    let detect = dev.create_buffer(4);
    let cfg = LaunchConfig::new(global, local)
        .arg(Arg::Buffer(ib))
        .arg(Arg::Buffer(ob))
        .arg(Arg::Buffer(detect));

    let (stats, trace) = dev.launch_traced(&rmt.kernel, &cfg, TraceConfig::wavefront(0, 0, 64))?;
    println!("== first 64 records of work-group 0, wavefront 0 ==\n");
    print!("{}", trace.render());
    println!(
        "\nkernel ran in {} cycles; detections buffer = {}",
        stats.cycles,
        dev.read_u32s(detect)[0]
    );
    println!(
        "\nNote the prologue (global_id masking and shifting), the LDS\n\
         communication stores under the producer mask, and the comparison +\n\
         protected store under the consumer mask — Section 6.2 of the paper,\n\
         instruction by instruction."
    );
    assert_eq!(dev.read_u32s(ob)[10], (10 * 7) ^ 10);
    Ok(())
}

//! Fault campaign on an image-processing pipeline: bombard the 8×8 DCT
//! kernel's local data share with single-event upsets and compare the three
//! protection levels.
//!
//! The campaign demonstrates Table 2 of the paper end-to-end:
//!
//! * unprotected          → silent pixel corruption, zero warnings;
//! * Intra-Group−LDS      → the LDS sits *outside* the sphere of
//!   replication: both redundant threads read the same corrupted word and
//!   agree — still silent corruption;
//! * Intra-Group+LDS      → LDS allocations are duplicated: the redundant
//!   pair disagrees and the fault is detected.
//!
//! ```text
//! cargo run --release --example dct_fault_campaign
//! ```

use gpu_rmt::kernels::util::Xorshift;
use gpu_rmt::kernels::{by_abbrev, Scale};
use gpu_rmt::rmt::{transform, RmtLauncher, TransformOptions};
use gpu_rmt::sim::{Device, DeviceConfig, FaultPlan, FaultTarget, Injection};

const STORM: usize = 300;

fn storm(rng: &mut Xorshift) -> FaultPlan {
    FaultPlan {
        injections: (0..STORM)
            .map(|i| Injection {
                after_dyn_inst: 100 + i as u64 * 61,
                target: FaultTarget::Lds {
                    group: rng.below(128) as usize,
                    offset: rng.below(128) * 4, // within the 512 B block/temp
                    bit: rng.below(8) as u8,
                },
            })
            .collect(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = by_abbrev("DCT").expect("DCT is in the suite");
    let device = DeviceConfig::radeon_hd_7790();
    let kernel = bench.kernel();

    // Golden image.
    let mut dev = Device::new(device.clone());
    let plan = bench.plan(Scale::Paper, &mut dev);
    let compiled = dev.compile(&kernel)?;
    dev.launch_compiled(&compiled, &plan.passes[0])?;
    let golden = dev.read_f32s(plan.buffers[1]);

    // --- Unprotected ------------------------------------------------------
    let mut rng = Xorshift::new(0xDC7_FA17);
    let mut dev = Device::new(device.clone());
    let plan2 = bench.plan(Scale::Paper, &mut dev);
    let mut cfg = plan2.passes[0].clone();
    cfg.faults = storm(&mut rng);
    let st = dev.launch_compiled(&compiled, &cfg)?;
    let noisy = dev.read_f32s(plan2.buffers[1]);
    let corrupted = golden.iter().zip(&noisy).filter(|(a, b)| a != b).count();
    println!(
        "unprotected DCT:     {:>3} faults applied -> {corrupted:>4} corrupted coefficients, 0 warnings",
        st.faults_applied
    );
    assert!(corrupted > 0, "the storm should corrupt something");

    // --- RMT flavors ------------------------------------------------------
    for (name, opts, protected) in [
        (
            "Intra-Group-LDS",
            TransformOptions::intra_minus_lds(),
            false,
        ),
        ("Intra-Group+LDS", TransformOptions::intra_plus_lds(), true),
    ] {
        let rmt = transform(&kernel, &opts)?;
        let mut rng = Xorshift::new(0xDC7_FA17);
        let mut dev = Device::new(device.clone());
        let plan3 = bench.plan(Scale::Paper, &mut dev);
        let cfg = plan3.passes[0].clone().faults(storm(&mut rng));
        let run = RmtLauncher::new().launch(&mut dev, &rmt, &cfg)?;
        let out = dev.read_f32s(plan3.buffers[1]);
        let corrupted = golden.iter().zip(&out).filter(|(a, b)| a != b).count();
        println!(
            "{name}:     {:>3} faults applied -> {corrupted:>4} corrupted coefficients, {} detections",
            run.stats.faults_applied, run.detections
        );
        if protected {
            assert!(
                run.detections > 0,
                "+LDS duplicates the LDS: faults must be caught"
            );
        }
    }

    println!(
        "\nExactly Table 2 of the paper: with the LDS outside the sphere of\n\
         replication (−LDS) both redundant threads read the same corrupted\n\
         word and agree; duplicating the LDS (+LDS) exposes the upsets."
    );
    Ok(())
}

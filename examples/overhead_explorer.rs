//! Overhead explorer: decompose the RMT slowdown of a kernel into the
//! paper's three components (Figures 4/7 methodology) using the
//! `rmt_core::decompose` API on a standalone kernel.
//!
//! ```text
//! cargo run --release --example overhead_explorer
//! ```

use gpu_rmt::ir::KernelBuilder;
use gpu_rmt::rmt::decompose::decompose;
use gpu_rmt::rmt::TransformOptions;
use gpu_rmt::sim::{Arg, DeviceConfig, LaunchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hash-then-store kernel whose compute/memory balance we can feel.
    let mut b = KernelBuilder::new("hash");
    let inp = b.buffer_param("in");
    let out = b.buffer_param("out");
    let gid = b.global_id(0);
    let ia = b.elem_addr(inp, gid);
    let mut v = b.load_global(ia);
    let c = b.const_u32(0x9E37_79B9);
    for _ in 0..24 {
        v = b.mul_u32(v, c);
        v = b.xor_u32(v, gid);
    }
    let oa = b.elem_addr(out, gid);
    b.store_global(oa, v);
    let kernel = b.finish();

    let n = 32 * 1024usize;
    println!(
        "decomposing RMT overhead for `{}` ({n} items)\n",
        kernel.name
    );
    println!(
        "{:<18} {:>9} {:>10} {:>12} {:>7} {:>7}",
        "flavor", "doubling", "redundant", "communication", "sum", "total"
    );
    for opts in [
        TransformOptions::intra_plus_lds(),
        TransformOptions::intra_minus_lds(),
        TransformOptions::intra_plus_lds().with_swizzle(),
        TransformOptions::inter(),
    ] {
        let d = decompose(
            &DeviceConfig::radeon_hd_7790(),
            &kernel,
            &opts,
            &mut |dev| {
                let ib = dev.create_buffer((n * 4) as u32);
                let ob = dev.create_buffer((n * 4) as u32);
                dev.write_u32s(ib, &(0..n as u32).collect::<Vec<_>>());
                LaunchConfig::new_1d(n, 64)
                    .arg(Arg::Buffer(ib))
                    .arg(Arg::Buffer(ob))
            },
        )?;
        let label = format!(
            "{:?}{}",
            opts.flavor,
            if opts.comm == gpu_rmt::rmt::CommMode::Swizzle {
                "+FAST"
            } else {
                ""
            }
        );
        let doubling = d.doubling_overhead();
        let sum =
            1.0 + doubling.unwrap_or(0.0) + d.redundant_overhead() + d.communication_overhead();
        println!(
            "{:<18} {:>9} {:>9.1}% {:>11.1}% {:>6.2}x {:>6.2}x",
            label,
            doubling.map_or("n/a".into(), |v| format!("{:.1}%", 100.0 * v)),
            100.0 * d.redundant_overhead(),
            100.0 * d.communication_overhead(),
            sum,
            d.slowdown()
        );
    }
    println!(
        "\nEach row: the extra runtime added by (1) reserving space for the\n\
         doubled work-groups, (2) executing the redundant computation, and\n\
         (3) communicating and comparing outputs — the paper's Figure 4/7\n\
         methodology."
    );
    Ok(())
}

//! Quickstart: the whole system in one file.
//!
//! 1. Write a GPU kernel in the IR.
//! 2. Apply the Intra-Group+LDS RMT compiler pass.
//! 3. Run both on the simulated 12-CU GCN device and compare cost.
//! 4. Inject a transient fault into the vector register file and watch the
//!    redundant threads catch it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_rmt::ir::KernelBuilder;
use gpu_rmt::rmt::{launch_rmt, transform, TransformOptions};
use gpu_rmt::sim::{Arg, Device, DeviceConfig, FaultPlan, FaultTarget, LaunchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- 1. A kernel: out[i] = 3 * in[i] + 1 ------------------------------
    let mut b = KernelBuilder::new("affine");
    let inp = b.buffer_param("in");
    let out = b.buffer_param("out");
    let gid = b.global_id(0);
    let ia = b.elem_addr(inp, gid);
    let oa = b.elem_addr(out, gid);
    let v = b.load_global(ia);
    let three = b.const_u32(3);
    let one = b.const_u32(1);
    let t = b.mul_u32(v, three);
    let w = b.add_u32(t, one);
    b.store_global(oa, w);
    let kernel = b.finish();
    let value_reg = w; // we'll corrupt this register later

    println!("== the kernel ==\n{kernel}");

    // -- 2. The RMT compiler pass -----------------------------------------
    let rmt = transform(&kernel, &TransformOptions::intra_plus_lds())?;
    println!(
        "transformed `{}`: {} -> {} instructions, params {} -> {}\n",
        kernel.name,
        kernel.total_insts(),
        rmt.kernel.total_insts(),
        kernel.params.len(),
        rmt.kernel.params.len(),
    );

    // -- 3. Run original vs RMT on the simulated HD 7790 ------------------
    let n = 4096usize;
    let input: Vec<u32> = (0..n as u32).collect();

    let mut dev = Device::new(DeviceConfig::radeon_hd_7790());
    let ib = dev.create_buffer((n * 4) as u32);
    let ob = dev.create_buffer((n * 4) as u32);
    dev.write_u32s(ib, &input);
    let base_cfg = LaunchConfig::new_1d(n, 64)
        .arg(Arg::Buffer(ib))
        .arg(Arg::Buffer(ob));
    let base = dev.launch(&kernel, &base_cfg)?;
    assert_eq!(dev.read_u32s(ob)[10], 31);

    let mut dev = Device::new(DeviceConfig::radeon_hd_7790());
    let ib = dev.create_buffer((n * 4) as u32);
    let ob = dev.create_buffer((n * 4) as u32);
    dev.write_u32s(ib, &input);
    let cfg = LaunchConfig::new_1d(n, 64)
        .arg(Arg::Buffer(ib))
        .arg(Arg::Buffer(ob));
    let run = launch_rmt(&mut dev, &rmt, &cfg)?;
    assert_eq!(dev.read_u32s(ob)[10], 31, "RMT preserves results");
    println!(
        "original: {:>6} cycles   RMT: {:>6} cycles   slowdown {:.2}x   detections {}",
        base.cycles,
        run.stats.cycles,
        run.stats.cycles as f64 / base.cycles as f64,
        run.detections
    );

    // -- 4. Inject a single-event upset into the VRF ----------------------
    let mut dev = Device::new(DeviceConfig::radeon_hd_7790());
    let ib = dev.create_buffer((n * 4) as u32);
    let ob = dev.create_buffer((n * 4) as u32);
    dev.write_u32s(ib, &input);
    let cfg = LaunchConfig::new_1d(n, 64)
        .arg(Arg::Buffer(ib))
        .arg(Arg::Buffer(ob))
        .faults(FaultPlan {
            // A storm of upsets spread across time, lanes and bits, so
            // several land inside the value register's live window (the
            // device interleaves thousands of instructions from other
            // wavefronts around it).
            injections: (0..64u64)
                .map(|i| gpu_rmt::sim::Injection {
                    after_dyn_inst: 30 + 60 * i,
                    target: FaultTarget::Vgpr {
                        group: (i % 16) as usize,
                        wave: 0,
                        reg: value_reg.0,
                        lane: ((2 * i + 1) % 64) as usize,
                        bit: (i % 32) as u8,
                    },
                })
                .collect(),
        });
    let run = launch_rmt(&mut dev, &rmt, &cfg)?;
    println!(
        "with an injected VRF bit flip: detections = {} (faults applied: {})",
        run.detections, run.stats.faults_applied
    );
    assert!(run.detections > 0, "the redundant pair must disagree");
    println!("\nThe redundant threads caught the transient fault.");
    Ok(())
}
